// Package monolithic implements the baseline the tutorial contrasts every
// disaggregated design against (§1): a single-server database with a local
// buffer pool, a local write-ahead log fsynced to the server's SSD, and
// pages on the same SSD. No network is involved — but there is no
// elasticity either, and recovery must replay the local log against the
// on-disk pages.
package monolithic

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/buffer"
	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// Engine is the monolithic baseline.
type Engine struct {
	cfg    *sim.Config
	layout heap.Layout
	ssd    *device.SSD
	pool   *buffer.Pool
	log    *wal.Log
	locks  *txn.LockTable
	stats  engine.Stats

	// dir version-stamps the pool's frames at commit publishes; a frame
	// whose apply failed keeps its old stamp and goes stale, forcing the
	// next reader through fetchPage's log replay.
	dir   *coherence.Directory
	poolH *coherence.Handle
	ckpt  *checkpoint.Coordinator

	// testBetweenFlushAndTruncate, when set (tests only), runs in the
	// checkpoint's flush→truncate window — the window whose in-flight
	// commits the original Checkpoint ordering lost.
	testBetweenFlushAndTruncate func()

	mu sync.Mutex
	// disk is the durable page store (post-checkpoint images).
	disk map[page.ID][]byte
	// durableLSN is the highest LSN fsynced to the SSD log.
	durableLSN wal.LSN
	// checkpointLSN is the LSN covered by on-disk pages.
	checkpointLSN wal.LSN
	nextTx        atomic.Uint64
	crashed       atomic.Bool
}

// New creates a monolithic engine with a buffer pool of poolPages frames.
func New(cfg *sim.Config, layout heap.Layout, poolPages int) *Engine {
	e := &Engine{
		cfg:    cfg,
		layout: layout,
		ssd:    device.NewSSD(cfg, 32),
		log:    wal.NewLog(),
		locks:  txn.NewLockTable(),
		disk:   make(map[page.ID][]byte),
	}
	e.pool = buffer.NewPool(cfg, poolPages, e.fetchPage, e.writebackPage)
	e.dir = coherence.NewDirectory(cfg, "monolithic.coherence", coherence.ModeBump)
	e.dir.OnInvalidate = func(n int) { e.stats.Invalidations.Add(int64(n)) }
	e.dir.OnStale = func() { e.stats.StaleHits.Add(1) }
	e.poolH = e.dir.Register("pool", e.pool)
	e.pool.SetCoherence(e.poolH, func(d []byte) uint64 { return page.Wrap(d).LSN() })
	e.ckpt = checkpoint.New(cfg, "ckpt.monolithic")
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "monolithic" }

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return &e.stats }

func (e *Engine) fetchPage(c *sim.Clock, id page.ID) ([]byte, error) {
	e.mu.Lock()
	data, ok := e.disk[id]
	e.mu.Unlock()
	e.stats.StorageOps.Add(1)
	if !ok {
		data = e.layout.FormatPage(id).Bytes()
	}
	e.ssd.Read(c, e.layout.PageSize)
	out := make([]byte, len(data))
	copy(out, data)
	// Redo the log tail for this page: the disk image only reflects the
	// last writeback/checkpoint, but the fsynced WAL may hold newer
	// committed updates (e.g. after a failed in-pool apply staled the
	// frame). Replaying here makes a fetch authoritative.
	pg := page.Wrap(out)
	e.mu.Lock()
	ckpt := e.checkpointLSN
	e.mu.Unlock()
	recs, err := e.log.Replay(ckpt)
	if err != nil {
		// The log was truncated past the page's checkpoint floor — a
		// horizon-bookkeeping bug, surfaced loudly rather than serving a
		// silently stale page.
		return nil, err
	}
	for _, r := range recs {
		if r.Type == wal.TypeUpdate && page.ID(r.PageID) == id && uint64(r.LSN) > pg.LSN() {
			if err := e.layout.WriteValue(out, r.Key, r.After, uint64(r.LSN)); err != nil {
				break
			}
		}
	}
	return out, nil
}

func (e *Engine) writebackPage(c *sim.Clock, id page.ID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	e.mu.Lock()
	e.disk[id] = cp
	e.mu.Unlock()
	e.ssd.Write(c, len(data))
	e.stats.StorageOps.Add(1)
	return nil
}

func (e *Engine) readKey(c *sim.Clock) func(key uint64) ([]byte, error) {
	return func(key uint64) ([]byte, error) {
		id := e.layout.PageOf(key)
		if data, ok := e.pool.Peek(c, id); ok {
			e.stats.CacheHits.Add(1)
			return e.layout.ReadValue(data, key)
		}
		e.stats.CacheMisses.Add(1)
		data, err := e.pool.Get(c, id)
		if err != nil {
			return nil, err
		}
		return e.layout.ReadValue(data, key)
	}
}

// Execute implements engine.Engine.
func (e *Engine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if e.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKey(c))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	// Commit-time 2PL on the write set (sorted: deadlock-free).
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()
	// Log, fsync, apply.
	logBytes := 0
	var lastLSN wal.LSN
	pageStamp := make(map[page.ID]uint64)
	for _, k := range keys {
		id := e.layout.PageOf(k)
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, PageID: uint64(id), Key: k, After: writes[k]}
		lastLSN = e.log.Append(rec)
		logBytes += rec.EncodedSize()
		if uint64(lastLSN) > pageStamp[id] {
			pageStamp[id] = uint64(lastLSN)
		}
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	lastLSN = e.log.Append(commit)
	logBytes += commit.EncodedSize()
	e.ssd.Write(c, logBytes) // group-commit fsync
	st.StampCommit(uint64(lastLSN))
	e.stats.LogBytes.Add(int64(logBytes))
	e.mu.Lock()
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	e.mu.Unlock()
	// Apply, then publish the commit stamps: an applied frame is
	// re-stamped from its mutated bytes and stays fresh; a failed apply
	// (the fsynced WAL already holds the commit) leaves the old stamp and
	// the publish stales the frame, so the next reader refetches through
	// the log replay in fetchPage.
	for _, k := range keys {
		key := k
		_ = e.pool.Mutate(c, e.layout.PageOf(k), func(data []byte) error {
			return e.layout.WriteValue(data, key, writes[key], uint64(lastLSN))
		})
	}
	stamps := make([]coherence.PageStamp, 0, len(pageStamp))
	for id, st := range pageStamp {
		stamps = append(stamps, coherence.PageStamp{ID: id, Stamp: st})
	}
	e.dir.Publish(c, stamps, e.poolH)
	e.stats.Commits.Add(1)
	return nil
}

// Checkpoint flushes all dirty pages and truncates the log, implementing
// engine.Checkpointer. The recovery horizon is captured BEFORE the flush:
// a commit acked while the flush runs lands above the horizon and
// survives in the retained log tail. (The original flush-then-capture
// ordering truncated such a commit's records while its page updates were
// still only in the soon-to-be-lost buffer pool.)
func (e *Engine) Checkpoint(c *sim.Clock) error {
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: func() wal.LSN {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.durableLSN
		},
		Flush: func(c *sim.Clock, h wal.LSN) error {
			// Redo the retained tail up to the horizon into the pool
			// before flushing: a commit whose in-pool apply failed (its
			// frame was staled) exists only in log records the truncation
			// below h+1 is about to discard. Page-LSN guards make the
			// redo idempotent against already-applied commits.
			recs, err := e.log.Replay(e.ckpt.Horizon())
			if err != nil {
				return err
			}
			for _, r := range recs {
				if r.LSN > h || r.Type != wal.TypeUpdate {
					continue
				}
				rec := r
				_ = e.pool.Mutate(c, page.ID(rec.PageID), func(data []byte) error {
					if uint64(rec.LSN) <= page.Wrap(data).LSN() {
						return nil
					}
					return e.layout.WriteValue(data, rec.Key, rec.After, uint64(rec.LSN))
				})
			}
			if err := e.pool.FlushAll(c); err != nil {
				return err
			}
			e.mu.Lock()
			if h > e.checkpointLSN {
				e.checkpointLSN = h
			}
			e.mu.Unlock()
			if e.testBetweenFlushAndTruncate != nil {
				e.testBetweenFlushAndTruncate()
			}
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			e.log.TruncateBefore(h + 1)
			e.ssd.Write(c, 24) // checkpoint master record
			return nil
		},
	})
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *Engine) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// DurableLSN reports the highest LSN fsynced to the SSD log.
func (e *Engine) DurableLSN() wal.LSN {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.durableLSN
}

// Crash implements engine.Recoverer: the buffer pool is lost; the SSD
// (log + checkpointed pages) survives.
func (e *Engine) Crash() {
	e.crashed.Store(true)
	e.pool.InvalidateAll()
}

// Recover implements engine.Recoverer: ARIES-style redo of the log tail
// against on-disk pages.
func (e *Engine) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	e.mu.Lock()
	ckpt := e.checkpointLSN
	e.mu.Unlock()
	recs, err := e.log.Replay(ckpt)
	if err != nil {
		return 0, err
	}
	// Read the log tail from SSD.
	logBytes := 0
	for i := range recs {
		logBytes += recs[i].EncodedSize()
	}
	e.ssd.Read(c, logBytes)
	// Per-page LSN floors, each page fetched once.
	floors := make(map[uint64]wal.LSN)
	pageLSN := func(pid uint64) wal.LSN {
		if lsn, ok := floors[pid]; ok {
			return lsn
		}
		data, err := e.fetchPage(c, page.ID(pid))
		if err != nil {
			floors[pid] = 0
			return 0
		}
		lsn := wal.LSN(page.Wrap(data).LSN())
		floors[pid] = lsn
		return lsn
	}
	applied := wal.Redo(recs, pageLSN, func(r wal.Record) {
		e.pool.Mutate(c, page.ID(r.PageID), func(data []byte) error {
			return e.layout.WriteValue(data, r.Key, r.After, uint64(r.LSN))
		})
	})
	_ = applied
	if err := e.pool.FlushAll(c); err != nil {
		return 0, err
	}
	e.crashed.Store(false)
	return c.Now() - start, nil
}

// Pool exposes the buffer pool (tests and cache-metric experiments).
func (e *Engine) Pool() *buffer.Pool { return e.pool }
