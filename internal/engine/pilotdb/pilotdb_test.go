package pilotdb

import (
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/sim"
)

func TestConformancePilot(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return New(cfg, enginetest.Layout(t), 64, Pilot())
	})
}

func TestConformanceNaive(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return New(cfg, enginetest.Layout(t), 64, Naive())
	})
}

func TestOptimisticReadsRepairStalePages(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 2, Pilot())
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	val[0] = 0x5A
	// Writes spread over many pages so page-store ingestion (which lags
	// by one batch) leaves the last page stale; the tiny pool forces
	// re-reads from the page store.
	keys := 20 * uint64(layout.PerPage)
	for i := uint64(0); i < keys; i += uint64(layout.PerPage) {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	e.Pool().InvalidateAll()
	for i := uint64(0); i < keys; i += uint64(layout.PerPage) {
		key := i
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			v, err := tx.Read(key)
			if err != nil {
				return err
			}
			if v[0] != 0x5A {
				t.Errorf("key %d stale after repair: %v", key, v[0])
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Validations.Load() == 0 {
		t.Fatal("no optimistic validations happened")
	}
	if e.Repairs.Load() == 0 {
		t.Fatal("no repairs happened — the staleness path was never exercised")
	}
}

func TestPilotCommitCheaperThanNaive(t *testing.T) {
	// E8 shape: compute-driven one-sided logging beats the server-driven
	// path on commit latency.
	layout := enginetest.Layout(t)
	cfg := sim.DefaultConfig()
	run := func(opt Options) sim.GroupResult {
		e := New(cfg, layout, 256, opt)
		return sim.RunGroup(1, func(id int, c *sim.Clock) int {
			val := make([]byte, layout.ValSize)
			for i := 0; i < 300; i++ {
				engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(uint64(i%50), val) })
			}
			return 300
		})
	}
	pilot := run(Pilot())
	naive := run(Naive())
	if !(pilot.MeanLatency() < naive.MeanLatency()) {
		t.Fatalf("pilot %v should beat naive %v", pilot.MeanLatency(), naive.MeanLatency())
	}
}

func TestRecoveryFromPMLog(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, Pilot())
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	val[0] = 0x11
	for i := uint64(0); i < 50; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	e.Crash()
	d, err := e.Recover(sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if d > 1_000_000 {
		t.Fatalf("PM-log recovery took %v", d)
	}
	for i := uint64(0); i < 50; i += 7 {
		key := i
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			v, err := tx.Read(key)
			if err != nil {
				return err
			}
			if v[0] != 0x11 {
				t.Errorf("key %d lost", key)
			}
			return nil
		})
	}
}

func TestChaosCrashRecoveryPilot(t *testing.T) {
	enginetest.RunChaos(t, func(t *testing.T) engine.Engine {
		return New(sim.DefaultConfig(), enginetest.Layout(t), 64, Pilot())
	})
}
