// Package pilotdb implements the PilotDB architecture of §2.3: a
// disaggregated PERSISTENT MEMORY layer holds the log, giving transactions
// near-memory-speed persistence at a fraction of DRAM-pool cost. Its two
// signature optimizations are modeled as switchable options so E8 can
// ablate them:
//
//   - Compute-node-driven logging: the compute node appends log entries to
//     remote PM with one-sided RDMA (no PM-server CPU on the commit path).
//     The ablation uses server-driven two-sided appends instead.
//   - Optimistic page reads: the compute node reads pages from the page
//     store without coordinating on freshness, validates the page LSN, and
//     repairs a stale page by fetching the log tail from PM and replaying
//     it locally. The ablation forces coordinated (fresh) reads.
package pilotdb

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/buffer"
	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/storagenode"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// Options toggle PilotDB's two optimizations.
type Options struct {
	ComputeDrivenLogging bool
	OptimisticReads      bool
}

// Pilot returns the full PilotDB configuration.
func Pilot() Options { return Options{ComputeDrivenLogging: true, OptimisticReads: true} }

// Naive returns the server-driven, coordinated-read baseline.
func Naive() Options { return Options{} }

// Engine is the PilotDB-style engine.
type Engine struct {
	cfg    *sim.Config
	layout heap.Layout
	opt    Options
	// PMLog is the disaggregated persistent-memory log layer.
	PMLog *storagenode.LogStore
	// PageStore materializes pages asynchronously.
	PageStore *storagenode.Replica

	log   *wal.Log
	locks *txn.LockTable
	stats engine.Stats
	pool  *buffer.Pool

	// dir replaces the engine's old hand-rolled pageLSN map: commit
	// publishes bump per-page versions (ModeBump — optimistic readers
	// validate lazily), and the pool validates cached frames against it.
	dir   *coherence.Directory
	poolH *coherence.Handle

	// Validations / Repairs count optimistic-read outcomes.
	Validations atomic.Int64
	Repairs     atomic.Int64

	// ckpt drives the log lifecycle: the page store materializes the
	// durable prefix and adopts the horizon, then the PM log and the
	// compute-side log truncate below it — PM capacity is the scarce
	// resource this engine exists to economize.
	ckpt *checkpoint.Coordinator

	// LagEvery delays page-store ingestion by one batch every N commits
	// to surface stale optimistic reads (0 = always lag by one commit).
	mu         sync.Mutex
	pending    []wal.Record // records not yet given to the page store
	durableLSN wal.LSN
	nextTx     atomic.Uint64
	crashed    atomic.Bool
}

// New creates the engine.
func New(cfg *sim.Config, layout heap.Layout, poolPages int, opt Options) *Engine {
	e := &Engine{
		cfg:       cfg,
		layout:    layout,
		opt:       opt,
		PMLog:     storagenode.NewLogStore(cfg, storagenode.MediumPM),
		PageStore: storagenode.NewReplica(cfg, "ps-0", 0, layout, 1),
		log:       wal.NewLog(),
		locks:     txn.NewLockTable(),
	}
	e.pool = buffer.NewPool(cfg, poolPages, e.fetchPage, nil)
	e.dir = coherence.NewDirectory(cfg, "pilotdb.coherence", coherence.ModeBump)
	e.dir.OnInvalidate = func(n int) { e.stats.Invalidations.Add(int64(n)) }
	e.dir.OnStale = func() { e.stats.StaleHits.Add(1) }
	e.poolH = e.dir.Register("pool", e.pool)
	e.pool.SetCoherence(e.poolH, func(d []byte) uint64 { return page.Wrap(d).LSN() })
	e.ckpt = checkpoint.New(cfg, "ckpt.pilotdb")
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.opt.ComputeDrivenLogging && e.opt.OptimisticReads {
		return "pilotdb"
	}
	return "pilotdb-naive"
}

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return &e.stats }

// expectedLSN is the LSN a fresh copy of the page must carry: the highest
// published update-record LSN for the page (the directory version).
func (e *Engine) expectedLSN(id page.ID) wal.LSN {
	return wal.LSN(e.dir.Version(id))
}

// fetchPage is the optimistic (or coordinated) page read.
func (e *Engine) fetchPage(c *sim.Clock, id page.ID) ([]byte, error) {
	want := e.expectedLSN(id)
	if e.opt.OptimisticReads {
		// Aggressive read: no freshness coordination.
		data, err := e.PageStore.ReadPage(c, id, 0)
		if err != nil {
			return nil, err
		}
		e.stats.StorageOps.Add(1)
		e.stats.NetBytes.Add(int64(len(data)))
		e.stats.NetMsgs.Add(1)
		e.Validations.Add(1)
		if wal.LSN(page.Wrap(data).LSN()) >= want {
			return data, nil
		}
		// Stale: repair locally from the PM log's per-page chain.
		e.Repairs.Add(1)
		recs, err := e.PMLog.SincePage(c, uint64(id), wal.LSN(page.Wrap(data).LSN()))
		if errors.Is(err, wal.ErrTruncated) {
			// The repair window starts below the PM log's truncation
			// floor: the per-page chain cannot reconstruct the gap.
			// Fall back to a coordinated read — converge the page store
			// from the authoritative log and fetch a fresh image.
			e.PageStore.CatchUpFromLog(c, e.log)
			data, err = e.PageStore.ReadPage(c, id, want)
			if err != nil {
				return nil, err
			}
			return data, nil
		}
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if r.Type == wal.TypeUpdate {
				e.layout.WriteValue(data, r.Key, r.After, uint64(r.LSN))
				c.Advance(e.cfg.CPU.Cost(len(r.After)))
			}
		}
		return data, nil
	}
	// Coordinated read: push pending records to the page store first
	// (synchronously, charged to the reader), then read fresh.
	e.mu.Lock()
	pend := e.pending
	e.pending = nil
	e.mu.Unlock()
	if len(pend) > 0 {
		if err := e.PageStore.Ingest(c, pend); err != nil {
			// The delivery failed (injected drop/tear): the records are
			// still owed to the page store — re-queue them.
			e.mu.Lock()
			e.pending = append(pend, e.pending...)
			e.mu.Unlock()
			return nil, err
		}
	}
	data, err := e.PageStore.ReadPage(c, id, want)
	if err != nil {
		// Dropped asynchronous deliveries can leave the store
		// permanently stale; re-ship the delta from the authoritative
		// log and retry once.
		e.PageStore.CatchUpFromLog(sim.NewClock(), e.log)
		data, err = e.PageStore.ReadPage(c, id, want)
	}
	if err != nil {
		return nil, err
	}
	e.stats.StorageOps.Add(1)
	e.stats.NetBytes.Add(int64(len(data)))
	e.stats.NetMsgs.Add(1)
	return data, nil
}

func (e *Engine) readKey(c *sim.Clock) func(key uint64) ([]byte, error) {
	return func(key uint64) ([]byte, error) {
		id := e.layout.PageOf(key)
		// The pool validates cached frames against the directory itself
		// (replacing the old manual LSN check + Invalidate): Peek only
		// serves a frame whose stamp is current.
		if data, ok := e.pool.Peek(c, id); ok {
			e.stats.CacheHits.Add(1)
			return e.layout.ReadValue(data, key)
		}
		e.stats.CacheMisses.Add(1)
		data, err := e.pool.Get(c, id)
		if err != nil {
			return nil, err
		}
		return e.layout.ReadValue(data, key)
	}
}

// Execute implements engine.Engine.
func (e *Engine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if e.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKey(c))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()
	var recs []wal.Record
	logBytes := 0
	var lastLSN wal.LSN
	pageStamp := make(map[page.ID]uint64)
	for _, k := range keys {
		id := e.layout.PageOf(k)
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, PageID: uint64(id), Key: k, After: writes[k]}
		rec.LSN = e.log.Append(rec)
		lastLSN = rec.LSN
		logBytes += rec.EncodedSize()
		recs = append(recs, rec)
		if uint64(rec.LSN) > pageStamp[id] {
			pageStamp[id] = uint64(rec.LSN)
		}
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	commit.LSN = e.log.Append(commit)
	lastLSN = commit.LSN
	logBytes += commit.EncodedSize()
	recs = append(recs, commit)

	// Persistence on the PM layer.
	if e.opt.ComputeDrivenLogging {
		// One-sided RDMA append (the LogStore PM medium charges
		// exactly that).
		if err := e.PMLog.Append(c, recs); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
	} else {
		// Server-driven: a two-sided RPC engages the PM server CPU.
		c.Advance(e.cfg.RDMARPC.Cost(logBytes) + e.cfg.RemoteCPU)
		if err := e.PMLog.Append(sim.NewClock(), recs); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
		c.Advance(e.cfg.PMWrite.Cost(logBytes))
	}
	st.StampCommit(uint64(commit.LSN))
	e.stats.LogBytes.Add(int64(logBytes))
	e.stats.NetBytes.Add(int64(logBytes))
	e.stats.NetMsgs.Add(1)

	e.mu.Lock()
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	// Page-store ingestion is asynchronous: the previous pending batch
	// goes out now (background), the new one waits — so optimistic
	// readers genuinely race materialization.
	prev := e.pending
	e.pending = recs
	e.mu.Unlock()
	if len(prev) > 0 {
		e.PageStore.Ingest(sim.NewClock(), prev)
	}
	// Apply to cached pages, then publish the commit stamps. An applied
	// frame is re-stamped from its mutated bytes and stays fresh; a failed
	// apply (the PM log already holds the commit) leaves the old stamp and
	// the publish stales the frame, so the next read repairs via fetchPage
	// — replacing the old explicit Invalidate-on-error call.
	for _, k := range keys {
		key := k
		if e.pool.Contains(e.layout.PageOf(k)) {
			_ = e.pool.Mutate(c, e.layout.PageOf(k), func(data []byte) error {
				return e.layout.WriteValue(data, key, writes[key], uint64(lastLSN))
			})
		}
	}
	stamps := make([]coherence.PageStamp, 0, len(pageStamp))
	for id, st := range pageStamp {
		stamps = append(stamps, coherence.PageStamp{ID: id, Stamp: st})
	}
	e.dir.Publish(c, stamps, e.poolH)
	e.stats.Commits.Add(1)
	return nil
}

// Crash implements engine.Recoverer.
func (e *Engine) Crash() {
	e.crashed.Store(true)
	e.pool.InvalidateAll()
}

// Recover implements engine.Recoverer: transactions persisted in the PM
// log survive; the compute node learns the durable LSN with one PM read.
func (e *Engine) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	e.mu.Lock()
	e.durableLSN = e.PMLog.HighLSN()
	e.mu.Unlock()
	c.Advance(e.cfg.RDMA.Cost(64))
	e.crashed.Store(false)
	return c.Now() - start, nil
}

// Checkpoint implements engine.Checkpointer. The PM log is the scarce
// fast tier, so the checkpoint drains the asynchronous page-store
// pipeline (the pending batch plus any dropped deliveries), stamps the
// store with the horizon, and truncates the PM log — a fabric RPC that
// can fail and is retried next round — plus the compute-side log.
func (e *Engine) Checkpoint(c *sim.Clock) error {
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: func() wal.LSN {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.durableLSN
		},
		Flush: func(c *sim.Clock, h wal.LSN) error {
			e.mu.Lock()
			pend := e.pending
			e.pending = nil
			e.mu.Unlock()
			if len(pend) > 0 {
				if err := e.PageStore.Ingest(c, pend); err != nil {
					e.mu.Lock()
					e.pending = append(pend, e.pending...)
					e.mu.Unlock()
					return err
				}
			}
			if e.PageStore.Failed() {
				return storagenode.ErrStaleReplica
			}
			shipped := e.PageStore.CatchUpFromLog(c, e.log)
			e.stats.NetMsgs.Add(int64(shipped))
			e.PageStore.AdvanceHorizon(c, h)
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			if err := e.PMLog.TruncateBefore(c, h+1); err != nil {
				return err
			}
			e.log.TruncateBefore(h + 1)
			return nil
		},
	})
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *Engine) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// Pool exposes the compute cache.
func (e *Engine) Pool() *buffer.Pool { return e.pool }
