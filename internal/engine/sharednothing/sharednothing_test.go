package sharednothing

import (
	"testing"

	"github.com/disagglab/disagg/internal/cluster"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/sim"
)

func TestConformance(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return New(cfg, enginetest.Layout(t), 4)
	})
}

func TestElastic(t *testing.T) {
	enginetest.RunElastic(t, func(t *testing.T, cfg *sim.Config) cluster.Spec {
		layout := enginetest.Layout(t)
		var e *Engine
		return cluster.Spec{
			Name: "shared-nothing",
			New: func(id int) engine.Engine {
				e = New(cfg, layout, 1)
				return e
			},
			// Partitioned architecture: elasticity physically re-partitions
			// the single engine — the movement tax E4 measures.
			Rescale: func(c *sim.Clock, n int) int64 {
				return e.Rebalance(c, n)
			},
		}
	})
}

func TestCrossPartitionCostsMore(t *testing.T) {
	layout := enginetest.Layout(t)
	cfg := sim.DefaultConfig()
	e := New(cfg, layout, 8)
	val := make([]byte, layout.ValSize)

	// Find two keys on the same partition and two on different ones.
	var sameA, sameB, diffA, diffB uint64
	pa, _ := e.partOf(1)
	found := false
	for k := uint64(2); k < 1000 && !found; k++ {
		pk, _ := e.partOf(k)
		if pk == pa && sameB == 0 {
			sameA, sameB = 1, k
		}
		if pk != pa && diffB == 0 {
			diffA, diffB = 1, k
		}
		found = sameB != 0 && diffB != 0
	}
	if !found {
		t.Fatal("could not find key pairs")
	}
	single := sim.NewClock()
	if err := engine.Run(e, single, engine.RunOpts{}, func(tx engine.Tx) error {
		tx.Write(sameA, val)
		return tx.Write(sameB, val)
	}); err != nil {
		t.Fatal(err)
	}
	multi := sim.NewClock()
	if err := engine.Run(e, multi, engine.RunOpts{}, func(tx engine.Tx) error {
		tx.Write(diffA, val)
		return tx.Write(diffB, val)
	}); err != nil {
		t.Fatal(err)
	}
	if !(single.Now() < multi.Now()) {
		t.Fatalf("2PC txn (%v) should cost more than single-partition (%v)", multi.Now(), single.Now())
	}
}

func TestRebalanceMovesData(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 4)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 1000; i++ {
		key := i
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(key, val) }); err != nil {
			t.Fatal(err)
		}
	}
	rc := sim.NewClock()
	moved := e.Rebalance(rc, 8)
	if moved == 0 {
		t.Fatal("rebalance moved nothing")
	}
	if rc.Now() == 0 {
		t.Fatal("rebalance charged nothing")
	}
	if e.Partitions() != 8 {
		t.Fatalf("partitions = %d", e.Partitions())
	}
	// All data still readable after rebalance.
	for i := uint64(0); i < 1000; i += 97 {
		key := i
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			v, err := tx.Read(key)
			if err != nil {
				return err
			}
			if len(v) != layout.ValSize {
				t.Errorf("key %d lost", key)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}
