// Package sharednothing implements the classic distributed baseline the
// tutorial contrasts the shared architectures with (§1): data is hash-
// partitioned across N server nodes, each owning its shard's pages, log
// and locks. Single-partition transactions commit locally; cross-partition
// transactions pay two-phase commit. Elastic rescaling must physically
// move data between nodes — the cost shared-storage designs avoid (E4).
package sharednothing

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// partition is one shared-nothing node: its shard of the keyspace with
// local durability.
type partition struct {
	mu    sync.Mutex
	data  map[uint64][]byte
	log   *wal.Log
	ssd   *device.SSD
	locks *txn.LockTable
}

// Engine is the shared-nothing engine.
type Engine struct {
	cfg    *sim.Config
	layout heap.Layout
	stats  engine.Stats

	mu     sync.RWMutex
	parts  []*partition
	nextTx atomic.Uint64
	// commitSeq is the engine-wide commit stamp: per-partition logs keep
	// independent LSN spaces (and a cross-partition transaction has no
	// single LSN at all), so stamping uses a global sequence assigned
	// while the transaction still holds its write locks.
	commitSeq atomic.Uint64
	// MovedBytes accumulates rebalancing traffic (E4 metric).
	MovedBytes atomic.Int64

	// ckpt bounds the per-partition logs: each node forces its shard
	// image and truncates its local log below the captured head.
	ckpt *checkpoint.Coordinator
}

// New creates an engine with n partitions.
func New(cfg *sim.Config, layout heap.Layout, n int) *Engine {
	e := &Engine{cfg: cfg, layout: layout}
	for i := 0; i < n; i++ {
		e.parts = append(e.parts, newPartition(cfg))
	}
	e.ckpt = checkpoint.New(cfg, "ckpt.sharednothing")
	return e
}

func newPartition(cfg *sim.Config) *partition {
	return &partition{
		data:  make(map[uint64][]byte),
		log:   wal.NewLog(),
		ssd:   device.NewSSD(cfg, 32),
		locks: txn.NewLockTable(),
	}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "shared-nothing" }

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return &e.stats }

// Partitions reports the current node count.
func (e *Engine) Partitions() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.parts)
}

func (e *Engine) partOf(key uint64) (int, *partition) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	i := int((key * 0x9E3779B97F4A7C15 >> 32) % uint64(len(e.parts)))
	return i, e.parts[i]
}

// Execute implements engine.Engine. The coordinator is the partition of
// the first key touched; remote accesses pay network round trips, and
// multi-partition commits pay 2PC.
func (e *Engine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	txID := e.nextTx.Add(1)
	coord := -1
	touch := func(key uint64) int {
		i, _ := e.partOf(key)
		if coord == -1 {
			coord = i
		}
		return i
	}
	st := engine.NewStagedTx(func(key uint64) ([]byte, error) {
		i, p := e.partOf(key)
		if touch(key) != coord || i != coord {
			// Remote read: one network round trip.
			op := e.cfg.Begin(c, "tcp.rpc")
			c.Advance(e.cfg.TCP.Cost(e.layout.ValSize + 16))
			op.End(int64(e.layout.ValSize + 16))
			e.stats.NetBytes.Add(int64(e.layout.ValSize + 16))
			e.stats.NetMsgs.Add(1)
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		v, ok := p.data[key]
		if !ok {
			return make([]byte, e.layout.ValSize), nil
		}
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	})
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	// Group write set by partition.
	byPart := map[int][]uint64{}
	for _, k := range keys {
		i, _ := e.partOf(k)
		if coord == -1 {
			coord = i
		}
		byPart[i] = append(byPart[i], k)
	}
	// Lock per partition (sorted keys: deadlock-free).
	type held struct {
		p *partition
		k uint64
	}
	var locks []held
	abort := func() {
		for _, h := range locks {
			h.p.locks.Unlock(txID, h.k, txn.Exclusive)
		}
		e.stats.Aborts.Add(1)
	}
	for _, k := range keys {
		_, p := e.partOf(k)
		if err := p.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			abort()
			return engine.ErrConflict
		}
		locks = append(locks, held{p, k})
	}
	defer func() {
		for _, h := range locks {
			h.p.locks.Unlock(txID, h.k, txn.Exclusive)
		}
	}()

	// Commit: local fast path or 2PC.
	participants := len(byPart)
	if participants > 1 {
		// Prepare: one parallel round trip to all remote participants,
		// each force-logging a prepare record.
		maxPrep := time.Duration(0)
		var prepNet int64
		for i, ks := range byPart {
			probe := sim.NewClock()
			logBytes := 0
			for range ks {
				logBytes += 64
			}
			if i != coord {
				probe.Advance(e.cfg.TCP.Cost(logBytes))
				prepNet += int64(logBytes)
				e.stats.NetBytes.Add(int64(logBytes))
				e.stats.NetMsgs.Add(1)
			}
			e.parts[i].ssd.Write(probe, logBytes)
			if probe.Now() > maxPrep {
				maxPrep = probe.Now()
			}
		}
		// The joined parallel round (messaging + each participant's
		// prepare force) rides the fan-out span: per-leg device time is
		// hidden by the join, so the protocol owns the latency.
		op := e.cfg.Begin(c, "tcp.prepare")
		c.Advance(maxPrep)
		op.End(prepNet)
	}
	// Commit records + apply, parallel across participants.
	maxCommit := time.Duration(0)
	var commitNet int64
	for i, ks := range byPart {
		probe := sim.NewClock()
		p := e.parts[i]
		logBytes := 0
		var lastLSN wal.LSN
		for _, k := range ks {
			rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, PageID: uint64(e.layout.PageOf(k)), Key: k, After: writes[k]}
			lastLSN = p.log.Append(rec)
			logBytes += rec.EncodedSize()
		}
		cm := wal.Record{Type: wal.TypeCommit, TxID: txID}
		lastLSN = p.log.Append(cm)
		_ = lastLSN
		logBytes += cm.EncodedSize()
		if i != coord {
			probe.Advance(e.cfg.TCP.Cost(logBytes))
			commitNet += int64(logBytes)
			e.stats.NetBytes.Add(int64(logBytes))
			e.stats.NetMsgs.Add(1)
		}
		p.ssd.Write(probe, logBytes)
		e.stats.LogBytes.Add(int64(logBytes))
		p.mu.Lock()
		for _, k := range ks {
			cp := make([]byte, len(writes[k]))
			copy(cp, writes[k])
			p.data[k] = cp
		}
		p.mu.Unlock()
		if probe.Now() > maxCommit {
			maxCommit = probe.Now()
		}
	}
	// As with prepare: the joined commit round (messaging + per-node log
	// force) is the protocol's latency.
	cop := e.cfg.Begin(c, "tcp.commit")
	c.Advance(maxCommit)
	cop.End(commitNet)
	st.StampCommit(e.commitSeq.Add(1))
	e.stats.Commits.Add(1)
	return nil
}

// Checkpoint implements engine.Checkpointer. Per-partition logs keep
// independent LSN spaces, so the published horizon is the global commit
// sequence; each node captures its own log head alongside it, forces its
// shard image to local SSD, and truncates its local log below the
// captured head. The shard image (not the log) is the authoritative
// recovery source in this model, so the capture-flush-truncate ordering
// is what keeps the two in step.
func (e *Engine) Checkpoint(c *sim.Clock) error {
	var parts []*partition
	var heads []wal.LSN
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: func() wal.LSN { return wal.LSN(e.commitSeq.Load()) },
		Flush: func(c *sim.Clock, h wal.LSN) error {
			e.mu.RLock()
			parts = append([]*partition(nil), e.parts...)
			e.mu.RUnlock()
			heads = make([]wal.LSN, len(parts))
			for i, p := range parts {
				p.mu.Lock()
				heads[i] = p.log.Head() - 1
				imageBytes := len(p.data) * e.layout.ValSize
				p.mu.Unlock()
				p.ssd.Write(c, imageBytes)
			}
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			for i, p := range parts {
				p.log.TruncateBefore(heads[i] + 1)
				p.ssd.Write(c, 24) // per-node checkpoint master record
			}
			return nil
		},
	})
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *Engine) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// RetainedLogRecords reports the total records retained across every
// partition log (the bounded-recovery metric for E29).
func (e *Engine) RetainedLogRecords() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for _, p := range e.parts {
		n += p.log.Len()
	}
	return n
}

// Rebalance rescales to n partitions, physically moving every key whose
// home changes and charging the transfer — the elasticity tax of
// shared-nothing (E4).
func (e *Engine) Rebalance(c *sim.Clock, n int) (moved int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.parts
	oldN := uint64(len(old))
	parts := make([]*partition, n)
	for i := range parts {
		parts[i] = newPartition(e.cfg)
	}
	for _, p := range old {
		p.mu.Lock()
		for k, v := range p.data {
			h := k * 0x9E3779B97F4A7C15 >> 32
			ni := int(h % uint64(n))
			cp := make([]byte, len(v))
			copy(cp, v)
			parts[ni].data[k] = cp
			if int(h%oldN) != ni {
				moved += int64(len(v))
			}
		}
		p.mu.Unlock()
	}
	// Data movement: streamed over the network and rewritten to SSD.
	op := e.cfg.Begin(c, "tcp.rebalance")
	c.Advance(e.cfg.TCP.Cost(int(moved)))
	op.End(moved)
	parts[0].ssd.Write(c, int(moved))
	e.MovedBytes.Add(moved)
	e.stats.NetBytes.Add(moved)
	e.parts = parts
	return moved
}
