package socrates

import (
	"testing"

	"github.com/disagglab/disagg/internal/cluster"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/sim"
)

func TestConformance(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return New(cfg, enginetest.Layout(t), 64, 2)
	})
}

func TestElastic(t *testing.T) {
	enginetest.RunElastic(t, func(t *testing.T, cfg *sim.Config) cluster.Spec {
		layout := enginetest.Layout(t)
		var root *Engine
		return cluster.Spec{
			Name: "socrates",
			New: func(id int) engine.Engine {
				if id == 0 {
					root = New(cfg, layout, 64, 2)
					return root
				}
				return Peer(root, id, 64)
			},
		}
	})
}

func TestCommitWaitsOnlyForXLOG(t *testing.T) {
	layout := enginetest.Layout(t)
	cfg := sim.DefaultConfig()
	e := New(cfg, layout, 64, 3)
	e.SnapshotEvery = 0 // isolate the commit path
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	// Warm the cache so the commit path has no reads.
	engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(1, val) })
	before := c.Now()
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(1, val) }); err != nil {
		t.Fatal(err)
	}
	commitCost := c.Now() - before
	// The commit should cost about one TCP round trip + SSD log write,
	// NOT multiplied by the number of page servers.
	logSize := 200 // rough upper bound of the record batch
	budget := cfg.TCP.Cost(logSize) + cfg.SSDWrite.Cost(logSize) + cfg.DRAM.Cost(layout.PageSize)*4
	if commitCost > 2*budget {
		t.Fatalf("commit cost %v exceeds XLOG-only budget %v", commitCost, budget)
	}
}

func TestPageServersServeAfterComputeCrash(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, 2)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 30; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	e.Crash()
	d, err := e.Recover(sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if d > 1_000_000 {
		t.Fatalf("socrates recovery took %v", d)
	}
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
		v, err := tx.Read(5)
		if err != nil {
			return err
		}
		if len(v) != layout.ValSize {
			t.Error("value lost")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPageServerFailureTolerated(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 4, 2)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 30; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	e.PageServers[0].Fail()
	e.Pool().InvalidateAll()
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
		_, err := tx.Read(3)
		return err
	}); err != nil {
		t.Fatalf("read with one page server down: %v", err)
	}
}

func TestSnapshotsReachXStore(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, 1)
	e.SnapshotEvery = 8
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 32; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	if e.XStore.Len() == 0 {
		t.Fatal("no snapshots reached XStore")
	}
	if e.Stats().PageBytes.Load() == 0 {
		t.Fatal("snapshot traffic not accounted")
	}
}

func TestChaosCrashRecovery(t *testing.T) {
	enginetest.RunChaos(t, func(t *testing.T) engine.Engine {
		return New(sim.DefaultConfig(), enginetest.Layout(t), 64, 2)
	})
}
