// Package socrates implements the Socrates (Azure SQL Hyperscale)
// architecture of §2.1: durability and availability are separated into
// four tiers — compute, the XLOG service (fast durable log), page servers
// (availability: serve pages, apply log asynchronously), and XStore (cheap
// durable object storage holding page snapshots). A commit only waits for
// the XLOG append; page servers and XStore are off the commit path, so
// durability does not require copies in fast storage and availability does
// not require a fixed replica count.
package socrates

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/buffer"
	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/storagenode"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// Engine is the Socrates-style engine.
type Engine struct {
	cfg    *sim.Config
	layout heap.Layout
	// XLOG is the dedicated durability tier.
	XLOG *storagenode.LogStore
	// PageServers provide availability; each holds the full page range.
	PageServers []*storagenode.Replica
	// XStore is the cheap long-term tier receiving page snapshots.
	XStore *device.ObjectStore

	log   *wal.Log
	locks *txn.LockTable
	stats engine.Stats
	pool  *buffer.Pool

	// dir version-stamps the pool's frames at commit publishes; a frame
	// whose local apply failed keeps its old stamp and goes stale, so the
	// next reader refetches instead of seeing the pre-commit image.
	dir   *coherence.Directory
	poolH *coherence.Handle

	// gc, when non-nil, combines concurrent XLOG appends into shared
	// group flushes (engine.GroupCommitter).
	gc *sim.Batcher[[]wal.Record, wal.LSN]

	// SnapshotEvery pushes page snapshots to XStore every N commits
	// (0 disables).
	SnapshotEvery int

	// ckpt drives the log lifecycle: page servers absorb the durable
	// prefix and adopt the horizon, then XLOG and the authoritative log
	// truncate below it.
	ckpt *checkpoint.Coordinator

	mu          sync.Mutex
	durableLSN  wal.LSN
	commitCount int
	nextTx      atomic.Uint64
	crashed     atomic.Bool
}

// New creates the engine with nPageServers page servers.
func New(cfg *sim.Config, layout heap.Layout, poolPages, nPageServers int) *Engine {
	e := &Engine{
		cfg:           cfg,
		layout:        layout,
		XLOG:          storagenode.NewLogStore(cfg, storagenode.MediumSSD),
		XStore:        device.NewObjectStore(cfg),
		log:           wal.NewLog(),
		locks:         txn.NewLockTable(),
		SnapshotEvery: 256,
	}
	for i := 0; i < nPageServers; i++ {
		e.PageServers = append(e.PageServers, storagenode.NewReplica(cfg, fmt.Sprintf("ps-%d", i), i%3, layout, 1+0.1*float64(i)))
	}
	e.pool = buffer.NewPool(cfg, poolPages, e.fetchPage, nil)
	e.dir = coherence.NewDirectory(cfg, "socrates.coherence", coherence.ModeBump)
	e.dir.OnInvalidate = func(n int) { e.stats.Invalidations.Add(int64(n)) }
	e.dir.OnStale = func() { e.stats.StaleHits.Add(1) }
	e.poolH = e.dir.Register("pool", e.pool)
	e.pool.SetCoherence(e.poolH, func(d []byte) uint64 { return page.Wrap(d).LSN() })
	e.ckpt = checkpoint.New(cfg, "ckpt.socrates")
	return e
}

// Peer creates an additional compute node attached to root's shared
// substrate: XLOG, page servers, XStore, the authoritative log (one LSN
// space), and the page-coherence directory are shared; the cache, lock
// table, and stats are the peer's own. Peers rely on the cluster router
// keeping concurrent writers to one key on one member (independent lock
// tables); peerID stripes transaction IDs. A fresh peer is cold until
// Recover learns the XLOG high-water mark.
func Peer(root *Engine, peerID, poolPages int) *Engine {
	e := &Engine{
		cfg:           root.cfg,
		layout:        root.layout,
		XLOG:          root.XLOG,
		PageServers:   root.PageServers,
		XStore:        root.XStore,
		log:           root.log,
		locks:         txn.NewLockTable(),
		dir:           root.dir,
		SnapshotEvery: root.SnapshotEvery,
		ckpt:          root.ckpt, // one horizon per shared log
	}
	e.pool = buffer.NewPool(e.cfg, poolPages, e.fetchPage, nil)
	e.poolH = e.dir.Register(fmt.Sprintf("peer%d", peerID), e.pool)
	e.pool.SetCoherence(e.poolH, func(d []byte) uint64 { return page.Wrap(d).LSN() })
	e.nextTx.Store(uint64(peerID) << 40)
	return e
}

// Detach unregisters the peer's cache from the shared coherence directory
// (a retired member stops absorbing invalidation fan-out).
func (e *Engine) Detach() { e.dir.Deregister(e.poolH) }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "socrates" }

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return &e.stats }

// EnableGroupCommit implements engine.GroupCommitter: commits share XLOG
// flushes of up to maxItems transactions or the virtual window.
func (e *Engine) EnableGroupCommit(maxItems int, window time.Duration) {
	e.dir.EnableBatching(maxItems, window)
	if maxItems <= 1 {
		e.gc = nil
		return
	}
	e.gc = sim.NewBatcher(e.cfg, "socrates.groupcommit",
		sim.BatchPolicy{MaxItems: maxItems, Window: window, OnFlush: e.noteFlush},
		e.flushGroup)
}

func (e *Engine) noteFlush(n int, reason sim.FlushReason) {
	e.stats.GroupFlushes.Add(1)
	if reason == sim.FlushSize {
		e.stats.FlushOnSize.Add(1)
	} else {
		e.stats.FlushOnTimeout.Add(1)
	}
}

// flushGroup appends every rider's records to XLOG as one flush in LSN
// order; all riders wake with the group's durable high-water LSN.
func (e *Engine) flushGroup(c *sim.Clock, groups [][]wal.Record, out []wal.LSN) error {
	var recs []wal.Record
	for _, g := range groups {
		recs = append(recs, g...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	if err := e.XLOG.Append(c, recs); err != nil {
		return err
	}
	e.stats.NetMsgs.Add(1)
	high := recs[len(recs)-1].LSN
	e.mu.Lock()
	if high > e.durableLSN {
		e.durableLSN = high
	}
	e.mu.Unlock()
	for i := range out {
		out[i] = high
	}
	return nil
}

// fetchPage reads from the first healthy, fresh-enough page server.
func (e *Engine) fetchPage(c *sim.Clock, id page.ID) ([]byte, error) {
	e.mu.Lock()
	min := e.durableLSN
	e.mu.Unlock()
	var lastErr error = engine.ErrUnavailable
	for attempt := 0; attempt < 2; attempt++ {
		for _, ps := range e.PageServers {
			data, err := ps.ReadPage(c, id, min)
			if err == nil {
				e.stats.StorageOps.Add(1)
				e.stats.NetMsgs.Add(1)
				e.stats.NetBytes.Add(int64(len(data)))
				return data, nil
			}
			lastErr = err
		}
		// Dropped background dissemination can leave every page server
		// with the same log hole; re-ship the delta from the
		// authoritative log (what XLOG replay does) and retry once.
		bg := sim.NewClock()
		for _, ps := range e.PageServers {
			ps.CatchUpFromLog(bg, e.log)
		}
	}
	return nil, lastErr
}

func (e *Engine) readKey(c *sim.Clock) func(key uint64) ([]byte, error) {
	return func(key uint64) ([]byte, error) {
		id := e.layout.PageOf(key)
		// Peek serves a validated hit atomically (the old Contains+Get
		// pair miscounted a stale frame as a hit).
		if data, ok := e.pool.Peek(c, id); ok {
			e.stats.CacheHits.Add(1)
			return e.layout.ReadValue(data, key)
		}
		e.stats.CacheMisses.Add(1)
		data, err := e.pool.Get(c, id)
		if err != nil {
			return nil, err
		}
		return e.layout.ReadValue(data, key)
	}
}

// Execute implements engine.Engine.
func (e *Engine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if e.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKey(c))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()
	var recs []wal.Record
	logBytes := 0
	var lastLSN wal.LSN
	pageStamp := make(map[page.ID]uint64)
	for _, k := range keys {
		id := e.layout.PageOf(k)
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, PageID: uint64(id), Key: k, After: writes[k]}
		rec.LSN = e.log.Append(rec)
		lastLSN = rec.LSN
		logBytes += rec.EncodedSize()
		recs = append(recs, rec)
		if uint64(rec.LSN) > pageStamp[id] {
			pageStamp[id] = uint64(rec.LSN)
		}
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	commit.LSN = e.log.Append(commit)
	lastLSN = commit.LSN
	logBytes += commit.EncodedSize()
	recs = append(recs, commit)

	// Durability: the commit waits ONLY for XLOG.
	if e.gc != nil {
		if _, err := e.gc.Submit(c, recs); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
		e.stats.GroupCommits.Add(1)
	} else {
		if err := e.XLOG.Append(c, recs); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
		e.stats.NetMsgs.Add(1)
	}
	st.StampCommit(uint64(commit.LSN))
	e.stats.LogBytes.Add(int64(logBytes))
	e.stats.NetBytes.Add(int64(logBytes))

	// Availability: XLOG disseminates to page servers off the commit
	// path (the writer does NOT pay this fan-out — Socrates's advantage
	// over Taurus's writer-driven distribution).
	bg := sim.NewClock()
	for _, ps := range e.PageServers {
		ps.Ingest(bg, recs)
	}

	e.mu.Lock()
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	e.commitCount++
	doSnap := e.SnapshotEvery > 0 && e.commitCount%e.SnapshotEvery == 0
	e.mu.Unlock()
	// Apply to cached pages, then publish the commit stamps. Mutate
	// re-stamps an applied frame from the mutated bytes so it stays fresh;
	// a failed apply (XLOG already made the commit durable) leaves the old
	// stamp and the publish stales the frame, so the next reader refetches
	// — replacing the old explicit Invalidate-on-error call.
	for _, k := range keys {
		key := k
		if e.pool.Contains(e.layout.PageOf(k)) {
			_ = e.pool.Mutate(c, e.layout.PageOf(k), func(data []byte) error {
				return e.layout.WriteValue(data, key, writes[key], uint64(lastLSN))
			})
		}
	}
	stamps := make([]coherence.PageStamp, 0, len(pageStamp))
	for id, st := range pageStamp {
		stamps = append(stamps, coherence.PageStamp{ID: id, Stamp: st})
	}
	e.dir.Publish(c, stamps, e.poolH)
	if doSnap {
		e.snapshotToXStore(c, keys)
	}
	e.stats.Commits.Add(1)
	return nil
}

// snapshotToXStore pushes current page images of recently written pages to
// XStore — the extra data movement the tutorial notes Socrates may incur.
func (e *Engine) snapshotToXStore(c *sim.Clock, keys []uint64) {
	seen := map[page.ID]bool{}
	for _, k := range keys {
		id := e.layout.PageOf(k)
		if seen[id] {
			continue
		}
		seen[id] = true
		bg := sim.NewClock() // read page server on background clock
		data, err := e.PageServers[0].ReadPage(bg, id, 0)
		if err != nil {
			continue
		}
		e.XStore.Put(c, fmt.Sprintf("page/%d", id), data)
		e.stats.PageBytes.Add(int64(len(data)))
		e.stats.NetBytes.Add(int64(len(data)))
		e.stats.NetMsgs.Add(1)
	}
}

// Crash implements engine.Recoverer.
func (e *Engine) Crash() {
	e.crashed.Store(true)
	e.pool.InvalidateAll()
}

// Recover implements engine.Recoverer: the new compute node learns the
// durable LSN from XLOG; page servers keep serving (availability tier
// unaffected by compute failure).
func (e *Engine) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	e.mu.Lock()
	e.durableLSN = e.XLOG.HighLSN()
	e.mu.Unlock()
	// One metadata round trip to XLOG.
	op := e.cfg.Begin(c, "tcp.rpc")
	c.Advance(e.cfg.TCP.Cost(64))
	op.End(64)
	e.crashed.Store(false)
	return c.Now() - start, nil
}

// Checkpoint implements engine.Checkpointer. In Socrates the durability
// tier (XLOG) must stay small — it is the expensive fast tier — so the
// checkpoint drives page servers to absorb the durable prefix, stamps
// them with the horizon, and truncates XLOG (a fabric RPC that can fail
// and is retried next round) plus the compute-side log below it.
func (e *Engine) Checkpoint(c *sim.Clock) error {
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: func() wal.LSN {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.durableLSN
		},
		Flush: func(c *sim.Clock, h wal.LSN) error {
			advanced := 0
			for _, ps := range e.PageServers {
				if ps.Failed() {
					continue
				}
				shipped := ps.CatchUpFromLog(c, e.log)
				e.stats.NetMsgs.Add(int64(shipped))
				ps.AdvanceHorizon(c, h)
				advanced++
			}
			if advanced == 0 {
				return storagenode.ErrNoQuorum
			}
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			if err := e.XLOG.TruncateBefore(c, h+1); err != nil {
				return err
			}
			e.log.TruncateBefore(h + 1)
			return nil
		},
	})
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *Engine) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// Pool exposes the compute cache.
func (e *Engine) Pool() *buffer.Pool { return e.pool }
