package snowflake

import (
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/wal"
)

func TestKVConformance(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return NewKV(cfg, enginetest.Layout(t))
	})
}

func TestKVChaosCrashRecovery(t *testing.T) {
	enginetest.RunChaos(t, func(t *testing.T) engine.Engine {
		return NewKV(sim.DefaultConfig(), enginetest.Layout(t))
	})
}

// A torn segment upload (crash mid-put) must lose only the torn tail:
// whole records in the truncated object replay cleanly at recovery.
func TestKVTornSegmentRecoversCleanPrefix(t *testing.T) {
	layout := enginetest.Layout(t)
	e := NewKV(sim.DefaultConfig(), layout)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	val[0] = 0xAB
	for i := uint64(0); i < 8; i++ {
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) }); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-upload: truncate the newest segment object to a
	// byte count that splits a record.
	keys := e.Store.Keys()
	last := ""
	for _, k := range keys {
		if k > last {
			last = k
		}
	}
	data, err := e.Store.Get(c, last)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := wal.DecodePrefix(data)
	if err != nil || len(recs) == 0 {
		t.Fatalf("bad segment: %v (%d recs)", err, len(recs))
	}
	if err := e.Store.Put(c, last, data[:len(data)-5]); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	if _, err := e.Recover(sim.NewClock()); err != nil {
		t.Fatalf("recovery choked on torn segment: %v", err)
	}
	// All but the last segment's torn tail must be intact.
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		if v[0] != 0xAB {
			t.Errorf("key 0 lost after torn-segment recovery")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
