package snowflake

import (
	"testing"

	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/workload"
)

func newLoaded(t *testing.T, rows int) (*Service, *workload.Data) {
	t.Helper()
	cfg := sim.DefaultConfig()
	svc := NewService(cfg)
	d := workload.TPCH{ScaleRows: rows, Clustered: true, Seed: 1}.Generate()
	svc.LoadTable("lineitem", d.Lineitem)
	svc.LoadTable("orders", d.Orders)
	return svc, d
}

func TestWarehouseRunsQ6(t *testing.T) {
	cfg := sim.DefaultConfig()
	svc, d := newLoaded(t, 30_000)
	wh := svc.AddWarehouse(sim.NewClock(), 1024)
	c := sim.NewClock()
	out, err := wh.Run(c, func(src func(string) (query.Source, error)) (query.Operator, error) {
		li, err := src("lineitem")
		if err != nil {
			return nil, err
		}
		return workload.Q6(cfg, li, 100, 465, 2, 5, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("Q6 rows = %d", out.Len())
	}
	if out.Cols[1][0] == 0 {
		t.Fatal("Q6 matched nothing")
	}
	_ = d
}

func TestUnknownTable(t *testing.T) {
	svc, _ := newLoaded(t, 5000)
	wh := svc.AddWarehouse(sim.NewClock(), 16)
	if _, err := wh.Source("nope"); err != ErrNoTable {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalCacheSpeedsUpRepeatQueries(t *testing.T) {
	cfg := sim.DefaultConfig()
	svc, _ := newLoaded(t, 40_000)
	wh := svc.AddWarehouse(sim.NewClock(), 4096)
	run := func() *sim.Clock {
		c := sim.NewClock()
		_, err := wh.Run(c, func(src func(string) (query.Source, error)) (query.Operator, error) {
			li, err := src("lineitem")
			if err != nil {
				return nil, err
			}
			return workload.Q1(cfg, li, 2556)
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cold := run()
	warm := run()
	if !(warm.Now() < cold.Now()/5) {
		t.Fatalf("warm query (%v) should be ≫ faster than cold (%v)", warm.Now(), cold.Now())
	}
	if wh.CacheHitRatio("lineitem") == 0 {
		t.Fatal("cache never hit")
	}
}

func TestElasticScaleOutNoDataMovement(t *testing.T) {
	cfg := sim.DefaultConfig()
	svc, _ := newLoaded(t, 20_000)
	objectsBefore := svc.Store.Len()
	// Spin up 4 more warehouses: storage is untouched and each serves
	// queries immediately.
	for i := 0; i < 4; i++ {
		rc := sim.NewClock()
		wh := svc.AddWarehouse(rc, 256)
		if rc.Now() > 10_000_000 {
			t.Fatalf("provisioning took %v", rc.Now())
		}
		_, err := wh.Run(sim.NewClock(), func(src func(string) (query.Source, error)) (query.Operator, error) {
			li, err := src("lineitem")
			if err != nil {
				return nil, err
			}
			return workload.Q6(cfg, li, 0, 2556, 0, 11, true)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if svc.Store.Len() != objectsBefore {
		t.Fatal("scale-out changed the storage tier")
	}
}

func TestPruningReducesQ6Cost(t *testing.T) {
	cfg := sim.DefaultConfig()
	svc, _ := newLoaded(t, 60_000)
	whP := svc.AddWarehouse(sim.NewClock(), 0) // no cache: isolate pruning
	whU := svc.AddWarehouse(sim.NewClock(), 0)
	pruned := sim.NewClock()
	whP.Run(pruned, func(src func(string) (query.Source, error)) (query.Operator, error) {
		li, _ := src("lineitem")
		return workload.Q6(cfg, li, 100, 200, 0, 11, true)
	})
	unpruned := sim.NewClock()
	whU.Run(unpruned, func(src func(string) (query.Source, error)) (query.Operator, error) {
		li, _ := src("lineitem")
		return workload.Q6(cfg, li, 100, 200, 0, 11, false)
	})
	if !(pruned.Now() < unpruned.Now()/2) {
		t.Fatalf("pruned %v vs unpruned %v on clustered data", pruned.Now(), unpruned.Now())
	}
}

func TestResultCacheServesRepeatsWithoutExecution(t *testing.T) {
	cfg := sim.DefaultConfig()
	svc, _ := newLoaded(t, 30_000)
	wh := svc.AddWarehouse(sim.NewClock(), 0) // no block cache: isolate the result cache
	build := func(src func(string) (query.Source, error)) (query.Operator, error) {
		li, err := src("lineitem")
		if err != nil {
			return nil, err
		}
		return workload.Q6(cfg, li, 100, 465, 2, 5, true)
	}
	cold := sim.NewClock()
	first, err := wh.RunCached(cold, "q6/w1", build)
	if err != nil {
		t.Fatal(err)
	}
	warm := sim.NewClock()
	second, err := wh.RunCached(warm, "q6/w1", build)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cols[0][0] != second.Cols[0][0] {
		t.Fatal("cached result differs")
	}
	if !(warm.Now() < cold.Now()/20) {
		t.Fatalf("cached run (%v) should be ≫ cheaper than execution (%v)", warm.Now(), cold.Now())
	}
	if h, m := svc.ResultCacheStats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d/%d", h, m)
	}
	// Even a DIFFERENT warehouse hits the shared service-level cache.
	wh2 := svc.AddWarehouse(sim.NewClock(), 0)
	other := sim.NewClock()
	if _, err := wh2.RunCached(other, "q6/w1", build); err != nil {
		t.Fatal(err)
	}
	if !(other.Now() < cold.Now()/20) {
		t.Fatal("result cache not shared across warehouses")
	}
}

func TestResultCacheInvalidatedByReload(t *testing.T) {
	cfg := sim.DefaultConfig()
	svc, _ := newLoaded(t, 10_000)
	wh := svc.AddWarehouse(sim.NewClock(), 0)
	build := func(src func(string) (query.Source, error)) (query.Operator, error) {
		li, err := src("lineitem")
		if err != nil {
			return nil, err
		}
		return workload.Q6(cfg, li, 0, 2556, 0, 11, false)
	}
	r1, err := wh.RunCached(sim.NewClock(), "q6/full", build)
	if err != nil {
		t.Fatal(err)
	}
	// Reload the table with different data: the cached result must not
	// be served.
	d2 := workload.TPCH{ScaleRows: 5000, Seed: 99}.Generate()
	svc.LoadTable("lineitem", d2.Lineitem)
	wh2 := svc.AddWarehouse(sim.NewClock(), 0) // fresh warehouse: no stale block cache
	r2, err := wh2.RunCached(sim.NewClock(), "q6/full", build)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cols[1][0] == r2.Cols[1][0] {
		t.Fatal("stale result served after table reload (counts should differ)")
	}
}
