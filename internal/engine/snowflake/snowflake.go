// Package snowflake implements the Snowflake-style OLAP architecture of
// §2.2: immutable columnar micro-partitions in cloud object storage, a
// metadata/cloud-services layer holding zone maps (min-max indexes), and
// elastic Virtual Warehouses — stateless compute clusters with local
// ephemeral caches — that can be added or removed without any data
// movement because all state is in the shared storage tier.
package snowflake

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/sim"
)

// ErrNoTable is returned for queries on unknown tables.
var ErrNoTable = errors.New("snowflake: no such table")

// Service is the cloud-services + storage layer. Besides metadata it hosts
// the global RESULT CACHE: because micro-partitions are immutable, a query
// result keyed by (query signature, table versions) stays valid until a
// table is reloaded — Snowflake serves repeat queries without touching any
// warehouse.
type Service struct {
	cfg   *sim.Config
	Store *device.ObjectStore

	mu       sync.Mutex
	tables   map[string]*query.ObjectSource
	versions map[string]int
	results  map[string]*query.Batch
	nextWH   int

	resultHits   int64
	resultMisses int64
}

// NewService creates the service with its own object store.
func NewService(cfg *sim.Config) *Service {
	return &Service{
		cfg:      cfg,
		Store:    device.NewObjectStore(cfg),
		tables:   make(map[string]*query.ObjectSource),
		versions: make(map[string]int),
		results:  make(map[string]*query.Batch),
	}
}

// LoadTable ingests a table as immutable micro-partition objects, bumping
// the table version (which invalidates cached results that read it).
func (s *Service) LoadTable(name string, t *query.Table) {
	src := query.NewObjectSource(s.cfg, s.Store, t, name)
	s.mu.Lock()
	s.tables[name] = src
	s.versions[name]++
	// Result keys embed every table version, so bumping one version
	// orphans stale entries; drop them all (coarse but correct).
	s.results = make(map[string]*query.Batch)
	s.mu.Unlock()
}

// resultKey builds the cache key: the caller-supplied query signature plus
// every table version.
func (s *Service) resultKey(signature string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.versions))
	for name := range s.versions {
		names = append(names, name)
	}
	sort.Strings(names)
	key := signature
	for _, name := range names {
		key += fmt.Sprintf("|%s@%d", name, s.versions[name])
	}
	return key
}

// ResultCacheStats reports (hits, misses).
func (s *Service) ResultCacheStats() (int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resultHits, s.resultMisses
}

// Warehouse is one elastic compute cluster with a local block cache.
type Warehouse struct {
	svc *Service
	// Name identifies the VW.
	Name string
	// cacheBlocks is the ephemeral-disk cache capacity.
	cacheBlocks int

	mu     sync.Mutex
	caches map[string]*query.CachedSource
}

// AddWarehouse provisions a new VW — a pure metadata operation: no data
// moves (E4's contrast with shared-nothing rebalancing).
func (s *Service) AddWarehouse(c *sim.Clock, cacheBlocks int) *Warehouse {
	s.mu.Lock()
	id := s.nextWH
	s.nextWH++
	s.mu.Unlock()
	// Control-plane provisioning round trip.
	op := s.cfg.Begin(c, "tcp.rpc")
	c.Advance(s.cfg.TCP.Cost(256))
	op.End(256)
	return &Warehouse{svc: s, Name: fmt.Sprintf("wh-%d", id), cacheBlocks: cacheBlocks, caches: make(map[string]*query.CachedSource)}
}

// Source returns the warehouse's cached view of a table.
func (w *Warehouse) Source(name string) (query.Source, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if cs, ok := w.caches[name]; ok {
		return cs, nil
	}
	w.svc.mu.Lock()
	src, ok := w.svc.tables[name]
	w.svc.mu.Unlock()
	if !ok {
		return nil, ErrNoTable
	}
	cs := query.NewCachedSource(w.svc.cfg, src, w.cacheBlocks)
	w.caches[name] = cs
	return cs, nil
}

// Run executes a query plan built from the warehouse's table views.
func (w *Warehouse) Run(c *sim.Clock, build func(src func(string) (query.Source, error)) (query.Operator, error)) (*query.Batch, error) {
	op, err := build(w.Source)
	if err != nil {
		return nil, err
	}
	return query.Collect(c, op)
}

// RunCached executes the query through the service result cache: a repeat
// of the same signature against unchanged tables costs one metadata round
// trip instead of a warehouse execution.
func (w *Warehouse) RunCached(c *sim.Clock, signature string, build func(src func(string) (query.Source, error)) (query.Operator, error)) (*query.Batch, error) {
	svc := w.svc
	key := svc.resultKey(signature)
	svc.mu.Lock()
	cached, ok := svc.results[key]
	if ok {
		svc.resultHits++
	} else {
		svc.resultMisses++
	}
	svc.mu.Unlock()
	// Metadata/service round trip either way.
	op := svc.cfg.Begin(c, "tcp.rpc")
	c.Advance(svc.cfg.TCP.Cost(128))
	op.End(128)
	if ok {
		return cached, nil
	}
	out, err := w.Run(c, build)
	if err != nil {
		return nil, err
	}
	svc.mu.Lock()
	svc.results[key] = out
	svc.mu.Unlock()
	return out, nil
}

// CacheHitRatio reports the warehouse's block-cache hit ratio for a table.
func (w *Warehouse) CacheHitRatio(name string) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if cs, ok := w.caches[name]; ok {
		return cs.HitRatio()
	}
	return 0
}
