package snowflake

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// segPrefix names the immutable commit-segment objects in the store.
const segPrefix = "kvseg/"

// ckptPrefix names the consolidated snapshot objects. A snapshot at LSN h
// holds the full materialized view covering every commit <= h, terminated
// by a TypeCommit marker record carrying h — recovery rejects a snapshot
// whose marker is missing (a torn upload) and falls back to the segments,
// which are only garbage-collected after the snapshot landed whole.
const ckptPrefix = "kvckpt/"

// KV is a transactional KV engine in the Snowflake storage style (§2.2):
// ALL durable state lives as immutable objects in cloud object storage,
// compute is stateless. Each commit uploads its write set as one immutable
// segment object (encoded WAL records, named by commit LSN); the compute
// node keeps only a volatile materialized view. Crash recovery re-lists
// the segments and replays them in LSN order — a torn upload (crash
// mid-put) leaves a truncated object whose clean record prefix is
// recovered and whose tail is discarded (wal.DecodePrefix).
type KV struct {
	cfg    *sim.Config
	layout heap.Layout
	Store  *device.ObjectStore
	log    *wal.Log
	locks  *txn.LockTable
	stats  engine.Stats

	// commitMu serializes the assign-LSN -> upload -> apply sequence so
	// segment LSN order matches apply order.
	commitMu sync.Mutex

	// ckpt consolidates segments into a snapshot object and deletes the
	// covered segments — without it recovery re-lists and replays every
	// segment ever uploaded (linear in history length).
	ckpt *checkpoint.Coordinator

	mu         sync.Mutex
	vals       map[uint64][]byte // volatile materialized view
	durableLSN wal.LSN
	nextTx     atomic.Uint64
	crashed    atomic.Bool
}

// NewKV creates the engine with its own object store.
func NewKV(cfg *sim.Config, layout heap.Layout) *KV {
	return &KV{
		cfg:    cfg,
		layout: layout,
		Store:  device.NewObjectStore(cfg),
		log:    wal.NewLog(),
		locks:  txn.NewLockTable(),
		vals:   make(map[uint64][]byte),
		ckpt:   checkpoint.New(cfg, "ckpt.snowflake"),
	}
}

// Name implements engine.Engine.
func (e *KV) Name() string { return "snowflake-kv" }

// Stats implements engine.Engine.
func (e *KV) Stats() *engine.Stats { return &e.stats }

// DurableLSN reports the highest object-durable commit LSN.
func (e *KV) DurableLSN() wal.LSN {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.durableLSN
}

func (e *KV) readKey(key uint64) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.vals[key]
	if !ok {
		return make([]byte, e.layout.ValSize), nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Execute implements engine.Engine.
func (e *KV) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if e.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKey)
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()

	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	var recs []wal.Record
	var encoded []byte
	var lastLSN wal.LSN
	for _, k := range keys {
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, Key: k, After: writes[k]}
		rec.LSN = e.log.Append(rec)
		lastLSN = rec.LSN
		encoded = rec.Encode(encoded)
		recs = append(recs, rec)
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	commit.LSN = e.log.Append(commit)
	lastLSN = commit.LSN
	encoded = commit.Encode(encoded)

	// Durability: one immutable segment upload. A failed or torn upload
	// is an unacknowledged commit (the torn object's record prefix may
	// still surface at recovery).
	if err := e.Store.Put(c, segKey(lastLSN), encoded); err != nil {
		e.stats.Aborts.Add(1)
		return engine.Unavail(err)
	}
	st.StampCommit(uint64(commit.LSN))
	e.stats.LogBytes.Add(int64(len(encoded)))
	e.stats.NetBytes.Add(int64(len(encoded)))
	e.stats.NetMsgs.Add(1)
	e.stats.StorageOps.Add(1)

	e.mu.Lock()
	for _, r := range recs {
		cp := make([]byte, len(r.After))
		copy(cp, r.After)
		e.vals[r.Key] = cp
	}
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	e.mu.Unlock()
	e.stats.Commits.Add(1)
	return nil
}

func segKey(lsn wal.LSN) string { return fmt.Sprintf("%s%020d", segPrefix, uint64(lsn)) }

func ckptKey(lsn wal.LSN) string { return fmt.Sprintf("%s%020d", ckptPrefix, uint64(lsn)) }

// Checkpoint implements engine.Checkpointer: upload a consolidated
// snapshot of the materialized view at the durable horizon, then delete
// the commit segments the snapshot covers (and superseded snapshots).
// The view may already contain commits newer than the horizon — that is
// safe, because their segments stay above the floor and replay over the
// snapshot idempotently. A torn snapshot upload fails the round before
// anything is deleted; a failed delete leaves garbage that the next
// round retries (deletion is idempotent).
func (e *KV) Checkpoint(c *sim.Clock) error {
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: e.DurableLSN,
		Flush: func(c *sim.Clock, h wal.LSN) error {
			e.mu.Lock()
			keys := make([]uint64, 0, len(e.vals))
			snap := make(map[uint64][]byte, len(e.vals))
			for k, v := range e.vals {
				keys = append(keys, k)
				snap[k] = append([]byte(nil), v...)
			}
			e.mu.Unlock()
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			var encoded []byte
			for _, k := range keys {
				rec := wal.Record{LSN: h, Type: wal.TypeUpdate, Key: k, After: snap[k]}
				encoded = rec.Encode(encoded)
			}
			// Terminal marker: recovery only trusts a snapshot that ends
			// with it (a torn upload loses the tail, marker included).
			marker := wal.Record{LSN: h, Type: wal.TypeCommit}
			encoded = marker.Encode(encoded)
			if err := e.Store.Put(c, ckptKey(h), encoded); err != nil {
				return err
			}
			e.stats.PageBytes.Add(int64(len(encoded)))
			e.stats.NetBytes.Add(int64(len(encoded)))
			e.stats.NetMsgs.Add(1)
			e.stats.StorageOps.Add(1)
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			bound := segKey(h)
			own := ckptKey(h)
			var firstErr error
			for _, k := range e.Store.Keys() {
				covered := (strings.HasPrefix(k, segPrefix) && k <= bound) ||
					(strings.HasPrefix(k, ckptPrefix) && k < own)
				if !covered {
					continue
				}
				if err := e.Store.Delete(c, k); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				e.stats.StorageOps.Add(1)
				e.stats.NetMsgs.Add(1)
			}
			e.log.TruncateBefore(h + 1)
			return firstErr
		},
	})
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *KV) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// Crash implements engine.Recoverer: the stateless compute node loses its
// materialized view; the object store survives.
func (e *KV) Crash() {
	e.crashed.Store(true)
	e.mu.Lock()
	e.vals = make(map[uint64][]byte)
	e.mu.Unlock()
}

// Recover implements engine.Recoverer: load the newest complete
// snapshot, then list the commit segments above it and replay them in
// LSN order. Truncated tails of torn segment uploads are discarded;
// whole records within them are replayed (ambiguous-outcome commits may
// surface, exactly as a real commit timeout can). A torn SNAPSHOT is
// rejected outright — its covered segments were never deleted, so an
// older snapshot or the raw segments still reconstruct everything.
func (e *KV) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	keys := e.Store.Keys()
	var segs, ckpts []string
	for _, k := range keys {
		switch {
		case strings.HasPrefix(k, segPrefix):
			segs = append(segs, k)
		case strings.HasPrefix(k, ckptPrefix):
			ckpts = append(ckpts, k)
		}
	}
	sort.Strings(segs) // zero-padded LSN names sort in commit order
	sort.Sort(sort.Reverse(sort.StringSlice(ckpts)))
	vals := make(map[uint64][]byte)
	var high, snapLSN wal.LSN
	for _, k := range ckpts {
		data, err := e.Store.Get(c, k)
		if err != nil {
			// One retry; a persistently unreadable snapshot must fail the
			// recovery rather than silently fall back past truncated
			// segments.
			data, err = e.Store.Get(c, k)
			if err != nil {
				return 0, err
			}
		}
		recs, _, err := wal.DecodePrefix(data)
		if err != nil || len(recs) == 0 || recs[len(recs)-1].Type != wal.TypeCommit {
			// Torn upload (missing terminal marker): the round that wrote
			// it never deleted anything — try the previous snapshot.
			continue
		}
		for _, r := range recs {
			if r.Type == wal.TypeUpdate {
				vals[r.Key] = append([]byte(nil), r.After...)
			}
		}
		snapLSN = recs[len(recs)-1].LSN
		high = snapLSN
		break
	}
	bound := segKey(snapLSN)
	for _, k := range segs {
		if snapLSN > 0 && k <= bound {
			continue // covered by the snapshot (GC may not have run yet)
		}
		data, err := e.Store.Get(c, k)
		if err != nil {
			// One retry: a transient injected fetch error must not turn
			// into silent data loss.
			data, err = e.Store.Get(c, k)
			if err != nil {
				return 0, err
			}
		}
		recs, _, err := wal.DecodePrefix(data)
		if err != nil {
			return 0, fmt.Errorf("segment %s: %w", k, err)
		}
		for _, r := range recs {
			if r.Type == wal.TypeUpdate {
				cp := make([]byte, len(r.After))
				copy(cp, r.After)
				vals[r.Key] = cp
			}
			if r.LSN > high {
				high = r.LSN
			}
		}
	}
	e.mu.Lock()
	e.vals = vals
	if high > e.durableLSN {
		e.durableLSN = high
	}
	e.mu.Unlock()
	e.crashed.Store(false)
	return c.Now() - start, nil
}
