package snowflake

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// segPrefix names the immutable commit-segment objects in the store.
const segPrefix = "kvseg/"

// KV is a transactional KV engine in the Snowflake storage style (§2.2):
// ALL durable state lives as immutable objects in cloud object storage,
// compute is stateless. Each commit uploads its write set as one immutable
// segment object (encoded WAL records, named by commit LSN); the compute
// node keeps only a volatile materialized view. Crash recovery re-lists
// the segments and replays them in LSN order — a torn upload (crash
// mid-put) leaves a truncated object whose clean record prefix is
// recovered and whose tail is discarded (wal.DecodePrefix).
type KV struct {
	cfg    *sim.Config
	layout heap.Layout
	Store  *device.ObjectStore
	log    *wal.Log
	locks  *txn.LockTable
	stats  engine.Stats

	// commitMu serializes the assign-LSN -> upload -> apply sequence so
	// segment LSN order matches apply order.
	commitMu sync.Mutex

	mu         sync.Mutex
	vals       map[uint64][]byte // volatile materialized view
	durableLSN wal.LSN
	nextTx     atomic.Uint64
	crashed    atomic.Bool
}

// NewKV creates the engine with its own object store.
func NewKV(cfg *sim.Config, layout heap.Layout) *KV {
	return &KV{
		cfg:    cfg,
		layout: layout,
		Store:  device.NewObjectStore(cfg),
		log:    wal.NewLog(),
		locks:  txn.NewLockTable(),
		vals:   make(map[uint64][]byte),
	}
}

// Name implements engine.Engine.
func (e *KV) Name() string { return "snowflake-kv" }

// Stats implements engine.Engine.
func (e *KV) Stats() *engine.Stats { return &e.stats }

// DurableLSN reports the highest object-durable commit LSN.
func (e *KV) DurableLSN() wal.LSN {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.durableLSN
}

func (e *KV) readKey(key uint64) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.vals[key]
	if !ok {
		return make([]byte, e.layout.ValSize), nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Execute implements engine.Engine.
func (e *KV) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if e.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKey)
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()

	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	var recs []wal.Record
	var encoded []byte
	var lastLSN wal.LSN
	for _, k := range keys {
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, Key: k, After: writes[k]}
		rec.LSN = e.log.Append(rec)
		lastLSN = rec.LSN
		encoded = rec.Encode(encoded)
		recs = append(recs, rec)
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	commit.LSN = e.log.Append(commit)
	lastLSN = commit.LSN
	encoded = commit.Encode(encoded)

	// Durability: one immutable segment upload. A failed or torn upload
	// is an unacknowledged commit (the torn object's record prefix may
	// still surface at recovery).
	if err := e.Store.Put(c, segKey(lastLSN), encoded); err != nil {
		e.stats.Aborts.Add(1)
		return engine.Unavail(err)
	}
	st.StampCommit(uint64(commit.LSN))
	e.stats.LogBytes.Add(int64(len(encoded)))
	e.stats.NetBytes.Add(int64(len(encoded)))
	e.stats.NetMsgs.Add(1)
	e.stats.StorageOps.Add(1)

	e.mu.Lock()
	for _, r := range recs {
		cp := make([]byte, len(r.After))
		copy(cp, r.After)
		e.vals[r.Key] = cp
	}
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	e.mu.Unlock()
	e.stats.Commits.Add(1)
	return nil
}

func segKey(lsn wal.LSN) string { return fmt.Sprintf("%s%020d", segPrefix, uint64(lsn)) }

// Crash implements engine.Recoverer: the stateless compute node loses its
// materialized view; the object store survives.
func (e *KV) Crash() {
	e.crashed.Store(true)
	e.mu.Lock()
	e.vals = make(map[uint64][]byte)
	e.mu.Unlock()
}

// Recover implements engine.Recoverer: list the commit segments, download
// and replay them in LSN order. Truncated tails of torn uploads are
// discarded; whole records within them are replayed (ambiguous-outcome
// commits may surface, exactly as a real commit timeout can).
func (e *KV) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	keys := e.Store.Keys()
	var segs []string
	for _, k := range keys {
		if strings.HasPrefix(k, segPrefix) {
			segs = append(segs, k)
		}
	}
	sort.Strings(segs) // zero-padded LSN names sort in commit order
	vals := make(map[uint64][]byte)
	var high wal.LSN
	for _, k := range segs {
		data, err := e.Store.Get(c, k)
		if err != nil {
			// One retry: a transient injected fetch error must not turn
			// into silent data loss.
			data, err = e.Store.Get(c, k)
			if err != nil {
				return 0, err
			}
		}
		recs, _, err := wal.DecodePrefix(data)
		if err != nil {
			return 0, fmt.Errorf("segment %s: %w", k, err)
		}
		for _, r := range recs {
			if r.Type == wal.TypeUpdate {
				cp := make([]byte, len(r.After))
				copy(cp, r.After)
				vals[r.Key] = cp
			}
			if r.LSN > high {
				high = r.LSN
			}
		}
	}
	e.mu.Lock()
	e.vals = vals
	if high > e.durableLSN {
		e.durableLSN = high
	}
	e.mu.Unlock()
	e.crashed.Store(false)
	return c.Now() - start, nil
}
