package enginetest

import (
	"encoding/binary"
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
)

// RunChaos drills an engine through repeated crash/recover cycles with
// transactions in between, verifying after every recovery that ALL
// committed generations survive — the durability contract every
// architecture in the paper must keep, whatever tier holds the truth.
func RunChaos(t *testing.T, factory func(t *testing.T) engine.Engine) {
	layout := Layout(t)
	e := factory(t)
	r := engine.Caps(e).Recoverer
	if r == nil {
		t.Skip("engine does not implement Recoverer")
	}
	c := sim.NewClock()
	const keysPerGen = 25
	written := map[uint64]uint64{} // key -> latest committed generation

	writeGen := func(gen uint64) {
		for i := uint64(0); i < keysPerGen; i++ {
			// Overlapping key ranges across generations: later
			// generations overwrite earlier ones.
			key := (gen%3)*10 + i
			v := make([]byte, layout.ValSize)
			binary.LittleEndian.PutUint64(v, gen)
			if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(key, v) }); err != nil {
				t.Fatalf("gen %d key %d: %v", gen, key, err)
			}
			written[key] = gen
		}
	}
	verifyAll := func(after string) {
		for key, gen := range written {
			key, gen := key, gen
			err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
				v, err := tx.Read(key)
				if err != nil {
					return err
				}
				if got := binary.LittleEndian.Uint64(v); got != gen {
					t.Errorf("%s: key %d = gen %d, want %d", after, key, got, gen)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s: read key %d: %v", after, key, err)
			}
		}
	}

	for gen := uint64(1); gen <= 5; gen++ {
		writeGen(gen)
		r.Crash()
		if _, err := r.Recover(sim.NewClock()); err != nil {
			t.Fatalf("recovery %d: %v", gen, err)
		}
		verifyAll("after recovery")
	}
}
