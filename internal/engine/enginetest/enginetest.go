// Package enginetest provides the conformance suite run against every
// OLTP engine: transactional semantics (read-your-writes, atomic
// multi-key commits), conflict behavior, concurrent correctness, and —
// for engines implementing engine.Recoverer — durability across crashes.
package enginetest

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
)

// Layout is the table layout every conformance engine must be built with.
func Layout(t *testing.T) heap.Layout {
	t.Helper()
	l, err := heap.NewLayout(4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func val(layout heap.Layout, tag uint64) []byte {
	v := make([]byte, layout.ValSize)
	binary.LittleEndian.PutUint64(v, tag)
	return v
}

func tag(v []byte) uint64 {
	if len(v) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// Run executes the conformance suite. factory must return a fresh engine
// built on Layout(t).
func Run(t *testing.T, factory func(t *testing.T) engine.Engine) {
	layout := Layout(t)

	t.Run("ReadYourWrites", func(t *testing.T) {
		e := factory(t)
		c := sim.NewClock()
		err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			if err := tx.Write(10, val(layout, 111)); err != nil {
				return err
			}
			v, err := tx.Read(10)
			if err != nil {
				return err
			}
			if tag(v) != 111 {
				t.Errorf("read-your-writes: got %d", tag(v))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("CommittedVisible", func(t *testing.T) {
		e := factory(t)
		c := sim.NewClock()
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(5, val(layout, 55))
		}); err != nil {
			t.Fatal(err)
		}
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			v, err := tx.Read(5)
			if err != nil {
				return err
			}
			if tag(v) != 55 {
				t.Errorf("committed write invisible: %d", tag(v))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("AbortDiscardsWrites", func(t *testing.T) {
		e := factory(t)
		c := sim.NewClock()
		boom := bytesErr("boom")
		err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			tx.Write(7, val(layout, 77))
			return boom
		})
		if err != boom {
			t.Fatalf("err = %v", err)
		}
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			v, err := tx.Read(7)
			if err != nil {
				return err
			}
			if tag(v) != 0 {
				t.Errorf("aborted write visible: %d", tag(v))
			}
			return nil
		})
	})

	t.Run("MultiKeyAtomic", func(t *testing.T) {
		e := factory(t)
		c := sim.NewClock()
		for i := 0; i < 10; i++ {
			n := uint64(i + 1)
			if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
				tx.Write(100, val(layout, n))
				tx.Write(200, val(layout, n))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			a, _ := tx.Read(100)
			b, _ := tx.Read(200)
			if !bytes.Equal(a, b) {
				t.Errorf("atomicity broken: %d vs %d", tag(a), tag(b))
			}
			if tag(a) != 10 {
				t.Errorf("final value %d", tag(a))
			}
			return nil
		})
	})

	t.Run("ConcurrentCounters", func(t *testing.T) {
		e := factory(t)
		const workers, perWorker = 4, 50
		res := sim.RunGroup(workers, func(id int, c *sim.Clock) int {
			key := uint64(1000 + id) // disjoint keys: no conflicts
			done := 0
			for i := 0; i < perWorker; i++ {
				err := engine.Run(e, c, engine.RunOpts{Retries: 10}, func(tx engine.Tx) error {
					v, err := tx.Read(key)
					if err != nil {
						return err
					}
					return tx.Write(key, val(layout, tag(v)+1))
				})
				if err == nil {
					done++
				}
			}
			return done
		})
		if res.TotalOps != workers*perWorker {
			t.Fatalf("committed %d/%d", res.TotalOps, workers*perWorker)
		}
		c := sim.NewClock()
		for id := 0; id < workers; id++ {
			key := uint64(1000 + id)
			engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
				v, _ := tx.Read(key)
				if tag(v) != perWorker {
					t.Errorf("key %d = %d, want %d", key, tag(v), perWorker)
				}
				return nil
			})
		}
	})

	t.Run("ContendedCounter", func(t *testing.T) {
		e := factory(t)
		const workers, perWorker = 4, 25
		res := sim.RunGroup(workers, func(id int, c *sim.Clock) int {
			done := 0
			for i := 0; i < perWorker; i++ {
				err := engine.Run(e, c, engine.RunOpts{Retries: 50}, func(tx engine.Tx) error {
					v, err := tx.Read(999)
					if err != nil {
						return err
					}
					return tx.Write(999, val(layout, tag(v)+1))
				})
				if err == nil {
					done++
				}
			}
			return done
		})
		// Lost updates are possible by design (reads are not locked:
		// first-committer-wins is not enforced), but every committed
		// increment must be ≥ some lower bound and the counter must
		// never exceed total commits.
		c := sim.NewClock()
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			v, _ := tx.Read(999)
			got := tag(v)
			if got == 0 || got > uint64(res.TotalOps) {
				t.Errorf("counter %d after %d commits", got, res.TotalOps)
			}
			return nil
		})
	})

	t.Run("CrashRecovery", func(t *testing.T) {
		e := factory(t)
		r := engine.Caps(e).Recoverer
		if r == nil {
			t.Skip("engine does not implement Recoverer")
		}
		c := sim.NewClock()
		for i := uint64(1); i <= 20; i++ {
			if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
				return tx.Write(i, val(layout, i*100))
			}); err != nil {
				t.Fatal(err)
			}
		}
		r.Crash()
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return nil }); err != engine.ErrUnavailable {
			t.Fatalf("crashed engine accepted work: %v", err)
		}
		rc := sim.NewClock()
		d, err := r.Recover(rc)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 {
			t.Fatal("negative recovery time")
		}
		for i := uint64(1); i <= 20; i++ {
			key := i
			if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
				v, err := tx.Read(key)
				if err != nil {
					return err
				}
				if tag(v) != key*100 {
					t.Errorf("key %d lost: %d", key, tag(v))
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	})
}

type bytesErr string

func (e bytesErr) Error() string { return string(e) }
