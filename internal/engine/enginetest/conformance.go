package enginetest

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/monolithic"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/fault"
	"github.com/disagglab/disagg/internal/sim/profile"
	"github.com/disagglab/disagg/internal/wal"
)

// seedFlag reseeds every randomized conformance workload, so a failing run
// is replayable exactly: go test -run Conformance -seed=<n>. The seed is
// logged by every failing subtest.
var seedFlag = flag.Int64("seed", 20260806, "seed for randomized conformance/chaos workloads")

// Seed reports the suite seed (the -seed flag).
func Seed() int64 { return *seedFlag }

// Factory builds a fresh engine on the given substrate config. The suite
// attaches fault injectors through cfg.Fault, so engines must thread cfg
// into every simulated component they build.
type Factory func(t *testing.T, cfg *sim.Config) engine.Engine

// durableLSNer is implemented by engines exposing their durable watermark;
// the suite checks it never moves backwards across recovery.
type durableLSNer interface{ DurableLSN() wal.LSN }

// Conformance workload shape: each worker owns a disjoint key range, so
// every key has exactly one writer and a per-key total order of intended
// writes — which is what makes the invariants checkable under concurrency.
const (
	confWorkers   = 4
	confOps       = 48
	confKeysEach  = 8
	confKeyBase   = 10_000
	confRetries   = 25
	confWriteFrac = 70 // percent of ops that are writes

	// confFlightEvents bounds each worker's always-on flight recorder:
	// the last N substrate events (ops, fault decisions, retries, sheds,
	// checkpoint rounds) are retained and dumped on invariant failure.
	confFlightEvents = 256
)

// mix64 is a splitmix64-style finalizer used for value checksums.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// confVal encodes (key, worker, seq, checksum) into a layout-sized value.
// The checksum ties all three together, so a torn or fabricated value is
// detectable on read.
func confVal(layout heap.Layout, key uint64, worker, seq uint64) []byte {
	v := make([]byte, layout.ValSize)
	binary.LittleEndian.PutUint64(v[0:], key)
	binary.LittleEndian.PutUint64(v[8:], worker)
	binary.LittleEndian.PutUint64(v[16:], seq)
	binary.LittleEndian.PutUint64(v[24:], mix64(key^mix64(worker<<32^seq)))
	return v
}

// confDecode splits a value; ok reports whether the checksum validates.
// zero reports an all-zero (never-written) value.
func confDecode(v []byte) (key, worker, seq uint64, zero, ok bool) {
	if len(v) < 32 {
		return 0, 0, 0, false, false
	}
	zero = true
	for _, b := range v {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return 0, 0, 0, true, true
	}
	key = binary.LittleEndian.Uint64(v[0:])
	worker = binary.LittleEndian.Uint64(v[8:])
	seq = binary.LittleEndian.Uint64(v[16:])
	sum := binary.LittleEndian.Uint64(v[24:])
	return key, worker, seq, zero, sum == mix64(key^mix64(worker<<32^seq))
}

// keyState is the per-key intended history. Only the owning worker mutates
// it during the workload; verification reads it afterwards.
type keyState struct {
	owner  int
	issued uint64 // highest seq handed to a write (acked or not)
	acked  uint64 // highest seq whose commit was acknowledged
}

// conformanceResult captures a finished workload: the per-key histories
// plus violations observed in flight (read-your-writes, torn values).
type conformanceResult struct {
	layout heap.Layout
	keys   map[uint64]*keyState

	// box aggregates the workers' flight recorders; on an invariant
	// failure the suite dumps every retained timeline. rounds counts
	// workload extensions (recorder labels stay distinguishable).
	box    *profile.Blackbox
	rounds int

	mu         sync.Mutex
	violations []string
	writeErrs  int
	readErrs   int
	commits    int
}

func (r *conformanceResult) violate(format string, args ...any) {
	r.mu.Lock()
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

func workerKeys(id int) (lo, hi uint64) {
	lo = confKeyBase + uint64(id)*confKeysEach
	return lo, lo + confKeysEach
}

// checkValue applies the per-key invariants to one observed value.
// Committed writes must be visible (seq >= acked), no value may be torn
// (checksum), and no value may come from outside the intended history
// (owner and seq bounds). where names the observation point in messages.
func checkValue(res *conformanceResult, key uint64, st *keyState, v []byte, where string) {
	k, w, seq, zero, ok := confDecode(v)
	if !ok {
		res.violate("%s: key %d: torn/garbled value %x", where, key, v[:32])
		return
	}
	if zero {
		if st.acked > 0 {
			res.violate("%s: key %d: lost acked write seq %d (value is zero)", where, key, st.acked)
		}
		return
	}
	if k != key || w != uint64(st.owner) {
		res.violate("%s: key %d: foreign value (key=%d worker=%d)", where, key, k, w)
		return
	}
	if seq > st.issued {
		res.violate("%s: key %d: fabricated seq %d (issued %d)", where, key, seq, st.issued)
		return
	}
	if seq < st.acked {
		res.violate("%s: key %d: stale seq %d < acked %d", where, key, seq, st.acked)
	}
}

// runConformanceWorkload drives the seeded concurrent workload: each worker
// issues a deterministic mix of writes (fresh seq per key) and reads
// (validated in flight for read-your-writes and value integrity) over its
// own key range. Transient errors are tolerated and counted; the per-key
// history records which writes were acknowledged.
func runConformanceWorkload(e engine.Engine, layout heap.Layout, seed int64) *conformanceResult {
	res := &conformanceResult{layout: layout, keys: make(map[uint64]*keyState), box: profile.NewBlackbox()}
	for id := 0; id < confWorkers; id++ {
		lo, hi := workerKeys(id)
		for k := lo; k < hi; k++ {
			res.keys[k] = &keyState{owner: id}
		}
	}
	extendConformanceWorkload(e, res, seed)
	return res
}

// extendConformanceWorkload continues a workload on the same engine and
// history: each worker issues another confOps operations over its own
// keys, advancing the per-key sequences where they left off. The recovery
// drills use it to land commits between checkpoint rounds, so the
// crash/recover verification spans checkpointed pages, the retained log
// tail, and everything in between.
func extendConformanceWorkload(e engine.Engine, res *conformanceResult, seed int64) {
	layout := res.layout
	res.rounds++
	round := res.rounds
	sim.RunGroup(confWorkers, func(id int, c *sim.Clock) int {
		c.SetEvents(res.box.Recorder(fmt.Sprintf("round %d worker %d", round, id), confFlightEvents))
		rng := sim.NewRand(seed, id)
		lo, _ := workerKeys(id)
		done := 0
		for op := 0; op < confOps; op++ {
			key := lo + uint64(rng.Intn(confKeysEach))
			st := res.keys[key]
			if rng.Intn(100) < confWriteFrac {
				st.issued++
				seq := st.issued
				v := confVal(layout, key, uint64(id), seq)
				err := engine.Run(e, c, engine.RunOpts{Retries: confRetries}, func(tx engine.Tx) error {
					return tx.Write(key, v)
				})
				if err != nil {
					// Unacknowledged commit: outcome unknown (it may
					// still surface — like a timed-out commit in a real
					// system). The history keeps seq as issued-only.
					res.mu.Lock()
					res.writeErrs++
					res.mu.Unlock()
					continue
				}
				st.acked = seq
				res.mu.Lock()
				res.commits++
				res.mu.Unlock()
				done++
				continue
			}
			var got []byte
			err := engine.Run(e, c, engine.RunOpts{Retries: confRetries}, func(tx engine.Tx) error {
				v, err := tx.Read(key)
				if err != nil {
					return err
				}
				got = v
				return nil
			})
			if err != nil {
				res.mu.Lock()
				res.readErrs++
				res.mu.Unlock()
				continue
			}
			checkValue(res, key, st, got, "workload read")
			done++
		}
		return done
	})
}

// verifyFinalState re-reads every workload key (with bounded retries, on a
// healed fabric) and applies the invariants, returning the violations. It
// also appends any violations recorded during the workload itself.
func verifyFinalState(e engine.Engine, res *conformanceResult) []string {
	c := sim.NewClock()
	if res.box != nil {
		c.SetEvents(res.box.Recorder(fmt.Sprintf("verify pass %d", res.box.Size()), confFlightEvents))
	}
	for key, st := range res.keys {
		var got []byte
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			k := key
			err = engine.Run(e, c, engine.RunOpts{Retries: confRetries}, func(tx engine.Tx) error {
				v, rerr := tx.Read(k)
				if rerr != nil {
					return rerr
				}
				got = v
				return nil
			})
			if err == nil {
				break
			}
		}
		if err != nil {
			res.violate("final read: key %d: %v", key, err)
			continue
		}
		checkValue(res, key, st, got, "final read")
	}
	res.mu.Lock()
	defer res.mu.Unlock()
	return append([]string(nil), res.violations...)
}

// reportViolations fails the test with every violation plus the replay
// seed.
func reportViolations(t *testing.T, seed int64, profile string, violations []string) {
	t.Helper()
	if len(violations) == 0 {
		return
	}
	for _, v := range violations {
		t.Errorf("%s", v)
	}
	t.Errorf("%d invariant violation(s) under profile %q — replay with: go test -run Conformance -seed=%d", len(violations), profile, seed)
}

// crashRecoverVerify drills the engine through a crash/recover cycle on a
// healed fabric and re-verifies: acked writes must survive recovery, and
// the durable LSN must not move backwards.
func crashRecoverVerify(t *testing.T, e engine.Engine, res *conformanceResult, seed int64, profile string) {
	t.Helper()
	r := engine.Caps(e).Recoverer
	if r == nil {
		return
	}
	var before wal.LSN
	d, hasLSN := e.(durableLSNer)
	if hasLSN {
		before = d.DurableLSN()
	}
	r.Crash()
	if _, err := r.Recover(sim.NewClock()); err != nil {
		t.Fatalf("recovery under profile %q failed: %v (replay: -seed=%d)", profile, err, seed)
	}
	if hasLSN {
		if after := d.DurableLSN(); after < before {
			res.violate("recovery LSN moved backwards: %d -> %d", before, after)
		}
	}
	reportViolations(t, seed, profile+"+crash", verifyFinalState(e, res))
}

// RunConformance executes the full cross-engine suite: the semantic tests
// (Run), a differential check against the monolithic baseline on the same
// seeded workload, and the seeded chaos workloads — one per standard fault
// profile — each followed by invariant verification on a healed fabric and
// a crash/recovery drill.
//
// factory must build a FRESH engine on the provided config each call (the
// suite attaches a fault.Injector via cfg.Fault).
func RunConformance(t *testing.T, factory Factory) {
	seed := Seed()
	t.Logf("conformance seed=%d (override with -seed)", seed)

	t.Run("Semantics", func(t *testing.T) {
		Run(t, func(t *testing.T) engine.Engine { return factory(t, sim.DefaultConfig()) })
	})

	t.Run("Differential", func(t *testing.T) {
		layout := Layout(t)
		e := factory(t, sim.DefaultConfig())
		base := monolithic.New(sim.DefaultConfig(), layout, 64)
		resE := runConformanceWorkload(e, layout, seed)
		resB := runConformanceWorkload(base, layout, seed)
		reportViolations(t, seed, "differential/engine", verifyFinalState(e, resE))
		reportViolations(t, seed, "differential/baseline", verifyFinalState(base, resB))
		// Fault-free and with one writer per key, both engines must
		// converge to byte-identical final values.
		diffs := diffFinalStates(e, base, resE)
		for _, d := range diffs {
			t.Errorf("%s", d)
		}
		if len(diffs) > 0 {
			t.Errorf("engine diverged from monolithic baseline on seed %d", seed)
		}
	})

	t.Run("SiteLint", func(t *testing.T) {
		runSiteLint(t, factory, seed)
	})

	for _, p := range fault.Profiles() {
		p := p
		t.Run("Fault/"+p.Name, func(t *testing.T) {
			runFaultProfile(t, factory, p, seed, false)
		})
	}

	// Overload: a hot-key contention storm under each fault profile with
	// the full admission stack engaged (backoff, retry budget, shedder) —
	// checks liveness (bounded virtual makespan; the pre-fix zero-delay
	// retry loop livelocked here) and attempts-accounting conservation.
	for _, p := range fault.Profiles() {
		p := p
		t.Run("Overload/"+p.Name, func(t *testing.T) {
			runOverloadProfile(t, factory, p, seed)
		})
	}

	// Isolation: the history-checked variants. Every transaction of a
	// seeded workload is recorded (reads, writes, retry lineage, commit
	// stamps) and the history is checked for dependency cycles and Adya
	// anomalies — on a clean fabric, under every fault profile, and under
	// hot-key contention with the admission stack.
	t.Run("Isolation/Clean", func(t *testing.T) { runIsolation(t, factory, nil, false, false) })
	for _, p := range fault.Profiles() {
		p := p
		t.Run("Isolation/Fault/"+p.Name, func(t *testing.T) {
			runIsolation(t, factory, &p, false, false)
		})
	}
	t.Run("Isolation/Contended", func(t *testing.T) { runIsolation(t, factory, nil, true, false) })

	// Coherence: the cross-tier stale-read probe — one writer bumping a
	// hot key set, concurrent readers (primary and replica paths) holding
	// the engine to a floor captured before each read. A value decoding
	// below the floor is a stale cache serve, whatever tier it hid in.
	t.Run("Coherence/Clean", func(t *testing.T) { runCoherenceProbe(t, factory, nil, false) })
	for _, p := range fault.Profiles() {
		p := p
		t.Run("Coherence/Fault/"+p.Name, func(t *testing.T) {
			runCoherenceProbe(t, factory, &p, false)
		})
	}

	// Recovery: the log-lifecycle drills. Checkpoint rounds interleave
	// with commits (clean, under every fault profile, and racing the
	// workload from a concurrent goroutine), truncation is held open by a
	// dedicated fault profile, and every variant ends in a crash/recover
	// cycle that must surface all acked commits — from checkpointed pages
	// and from the retained log tail alike.
	t.Run("Recovery/Clean", func(t *testing.T) { runRecoveryDrill(t, factory, nil, seed) })
	for _, p := range fault.Profiles() {
		p := p
		t.Run("Recovery/Fault/"+p.Name, func(t *testing.T) {
			runRecoveryDrill(t, factory, &p, seed)
		})
	}
	t.Run("Recovery/ConcurrentCheckpoint", func(t *testing.T) {
		runConcurrentCheckpoint(t, factory, seed)
	})
	t.Run("Recovery/TornTruncation", func(t *testing.T) {
		runTornTruncation(t, factory, seed)
	})

	// Batched variants: engines supporting group commit re-run the seeded
	// suite with batching enabled, so fault replays also cover grouped
	// flushes (one substrate fault decision shared by every rider).
	if engine.Caps(factory(t, sim.DefaultConfig())).GroupCommitter == nil {
		return
	}
	t.Run("Isolation/Batched", func(t *testing.T) { runIsolation(t, factory, nil, false, true) })
	t.Run("Coherence/Batched", func(t *testing.T) { runCoherenceProbe(t, factory, nil, true) })
	t.Run("Batched/Semantics", func(t *testing.T) {
		Run(t, func(t *testing.T) engine.Engine { return batched(factory(t, sim.DefaultConfig())) })
	})
	t.Run("Batched/Chaos", func(t *testing.T) {
		RunChaos(t, func(t *testing.T) engine.Engine { return batched(factory(t, sim.DefaultConfig())) })
	})
	for _, p := range fault.Profiles() {
		p := p
		t.Run("Batched/Fault/"+p.Name, func(t *testing.T) {
			runFaultProfile(t, factory, p, seed, true)
		})
	}
	t.Run("Batched/TimeoutFlushDurable", func(t *testing.T) {
		timeoutFlushDurable(t, factory)
	})
	t.Run("Batched/FlushFailureNotAcked", func(t *testing.T) {
		flushFailureNotAcked(t, factory, seed, fault.Profile{Name: "kill-appends", Drop: 1, Sites: fault.AppendSites})
	})
	t.Run("Batched/TornGroupFlush", func(t *testing.T) {
		flushFailureNotAcked(t, factory, seed, fault.Profile{Name: "torn-group", Torn: 1, Sites: fault.AppendSites})
	})
}

// Group-commit parameters for the batched suite variants. MaxItems equals
// confWorkers so seeded runs see both full-group (size) flushes and
// timeout flushes when stragglers leave groups partially filled.
const (
	batchGroupSize = confWorkers
	batchWindow    = 50 * time.Microsecond
)

// batched enables group commit on an engine built by a conformance
// factory. Callers have already checked the engine is a GroupCommitter.
func batched(e engine.Engine) engine.Engine {
	engine.Caps(e).GroupCommitter.EnableGroupCommit(batchGroupSize, batchWindow)
	return e
}

// runFaultProfile drives one seeded chaos workload under the profile,
// verifies invariants on a healed fabric, and drills crash/recovery —
// with or without group commit enabled.
func runFaultProfile(t *testing.T, factory Factory, p fault.Profile, seed int64, batch bool) {
	t.Helper()
	layout := Layout(t)
	inj := fault.New(seed, p)
	cfg := sim.DefaultConfig()
	cfg.Fault = inj
	// Per-site telemetry shares the fault injector's site labels;
	// on an invariant failure the table shows where latency and
	// bytes went under this profile.
	cfg.Stats = sim.NewRegistry()
	e := factory(t, cfg)
	label := p.Name
	if batch {
		e = batched(e)
		label = "batched/" + p.Name
	}
	res := runConformanceWorkload(e, layout, seed)
	// Verification runs on a healed fabric: the invariants are
	// about what the engine acknowledged, not about reads racing
	// live faults.
	inj.Heal()
	t.Logf("profile %s: commits=%d writeErrs=%d readErrs=%d faults={drops=%d dups=%d tears=%d delays=%d}",
		label, res.commits, res.writeErrs, res.readErrs,
		inj.Drops.Load(), inj.Dups.Load(), inj.Tears.Load(), inj.Delays.Load())
	if res.commits == 0 {
		t.Errorf("no transaction committed under profile %q (seed %d): fault rates starve the workload", label, seed)
	}
	reportViolations(t, seed, label, verifyFinalState(e, res))
	crashRecoverVerify(t, e, res, seed, label)
	checkConservation(t, e, label, seed)
	if t.Failed() {
		t.Logf("per-site telemetry under profile %q:\n%s", label, cfg.Stats.String())
		t.Logf("flight-recorder timelines under profile %q:\n%s", label, res.box.Dump())
	}
}

// timeoutFlushDurable is the flush-on-timeout regression: a lone commit
// can never fill a group, so it must be released by the window — charged
// as real commit latency — and still be durable across crash/recovery.
func timeoutFlushDurable(t *testing.T, factory Factory) {
	t.Helper()
	layout := Layout(t)
	e := batched(factory(t, sim.DefaultConfig()))
	c := sim.NewClock()
	key := uint64(confKeyBase)
	want := confVal(layout, key, 0, 1)
	if err := engine.Run(e, c, engine.RunOpts{Retries: confRetries}, func(tx engine.Tx) error {
		return tx.Write(key, want)
	}); err != nil {
		t.Fatalf("lone batched commit: %v", err)
	}
	if got := e.Stats().FlushOnTimeout.Load(); got == 0 {
		t.Error("lone commit was not released by a timeout flush")
	}
	if e.Stats().GroupCommits.Load() == 0 {
		t.Error("commit did not ride the group-commit path")
	}
	if c.Now() < batchWindow {
		t.Errorf("commit latency %v does not include the %v batching window", c.Now(), batchWindow)
	}
	if r := engine.Caps(e).Recoverer; r != nil {
		r.Crash()
		if _, err := r.Recover(sim.NewClock()); err != nil {
			t.Fatalf("recovery: %v", err)
		}
	}
	var got []byte
	if err := engine.Run(e, c, engine.RunOpts{Retries: confRetries}, func(tx engine.Tx) error {
		v, err := tx.Read(key)
		if err != nil {
			return err
		}
		got = v
		return nil
	}); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("timeout-flushed commit lost: got %x", got[:16])
	}
}

// flushFailureNotAcked is the flush-on-crash / torn-group-flush
// regression: with every durable append failing (dropped or torn
// mid-batch), no rider in any group may be acknowledged — a group flush
// either commits for all riders or errors for all. After healing, the
// engine must make progress again and fresh commits must survive
// crash/recovery.
func flushFailureNotAcked(t *testing.T, factory Factory, seed int64, p fault.Profile) {
	t.Helper()
	layout := Layout(t)
	inj := fault.New(seed, p)
	cfg := sim.DefaultConfig()
	cfg.Fault = inj
	e := batched(factory(t, cfg))
	res := runConformanceWorkload(e, layout, seed)
	if res.commits != 0 {
		t.Errorf("%d commit(s) acked while every durable append failed (profile %q)", res.commits, p.Name)
	}
	if res.writeErrs == 0 {
		t.Fatal("workload issued no writes — the regression is vacuous")
	}
	// Read-only transactions also count as Commits, so the write-path
	// check is on GroupCommits: no rider may have cleared a failed flush.
	if got := e.Stats().GroupCommits.Load(); got != 0 {
		t.Errorf("engine counted %d group commits under total append failure", got)
	}
	// Healed: nothing may surface as acked-but-lost or torn.
	inj.Heal()
	reportViolations(t, seed, "batched/"+p.Name, verifyFinalState(e, res))
	// The engine must still accept commits on the healed fabric...
	c := sim.NewClock()
	key := uint64(confKeyBase - 1)
	want := confVal(layout, key, 0, 1)
	if err := engine.Run(e, c, engine.RunOpts{Retries: confRetries}, func(tx engine.Tx) error {
		return tx.Write(key, want)
	}); err != nil {
		t.Fatalf("healed engine cannot commit: %v", err)
	}
	// ...and those commits must be genuinely durable.
	if r := engine.Caps(e).Recoverer; r != nil {
		r.Crash()
		if _, err := r.Recover(sim.NewClock()); err != nil {
			t.Fatalf("recovery after healing: %v", err)
		}
	}
	var got []byte
	if err := engine.Run(e, c, engine.RunOpts{Retries: confRetries}, func(tx engine.Tx) error {
		v, err := tx.Read(key)
		if err != nil {
			return err
		}
		got = v
		return nil
	}); err != nil {
		t.Fatalf("read back after recovery: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-heal commit lost after recovery: got %x", got[:16])
	}
}

// diffFinalStates reads every workload key from both engines and reports
// byte-level differences.
func diffFinalStates(a, b engine.Engine, res *conformanceResult) []string {
	var diffs []string
	c := sim.NewClock()
	read := func(e engine.Engine, key uint64) []byte {
		var got []byte
		engine.Run(e, c, engine.RunOpts{Retries: confRetries}, func(tx engine.Tx) error {
			v, err := tx.Read(key)
			if err != nil {
				return err
			}
			got = v
			return nil
		})
		return got
	}
	for key := range res.keys {
		va, vb := read(a, key), read(b, key)
		if !bytes.Equal(va, vb) {
			_, _, seqA, _, _ := confDecode(va)
			_, _, seqB, _, _ := confDecode(vb)
			diffs = append(diffs, fmt.Sprintf("key %d: engine seq %d != baseline seq %d", key, seqA, seqB))
		}
	}
	return diffs
}
