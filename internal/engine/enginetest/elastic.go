package enginetest

import (
	"errors"
	"testing"

	"github.com/disagglab/disagg/internal/cluster"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/fault"
)

// SpecFactory builds a fresh cluster.Spec for one fleet on the given
// substrate config. Like Factory, it must wire cfg into every simulated
// component so the suite's fault injector reaches the fabric.
type SpecFactory func(t *testing.T, cfg *sim.Config) cluster.Spec

// Elastic workload shape: the conformance key ranges and value encoding,
// driven through cluster.Fleet.Run instead of engine.Run, with membership
// churn injected mid-stream — a scale-out from one worker and a crash
// drill from another. Reads split between owner-routed and read-only
// (session-affinity) dispatch, so the cross-member freshness refresh is
// exercised under the same invariants as ordinary reads.
const (
	elasticStart    = 2 // initial fleet size
	elasticScaleTo  = 3 // mid-workload scale-out target
	elasticCrashID  = 1 // the member the crash drill kills
	elasticScaleOp  = confOps / 4
	elasticCrashOp  = confOps / 2
	elasticReadFrac = 50 // percent of reads that go read-only routed
)

// RunElastic executes the fleet-mode conformance variants: a seeded
// concurrent workload routed through a cluster.Fleet while the fleet
// scales out and a member crashes mid-run — on a clean fabric and under
// every standard fault profile. After each run the fabric heals, every
// key is re-verified through the (post-failover) router, the fleet drains
// back to a single member and is verified again, and the fleet-wide
// accounting invariant Attempts == Commits + Aborts + Shed is checked.
//
// specFor must build a FRESH Spec on the provided config each call.
func RunElastic(t *testing.T, specFor SpecFactory) {
	seed := Seed()
	t.Logf("elastic seed=%d (override with -seed)", seed)
	t.Run("Clean", func(t *testing.T) { runElasticProfile(t, specFor, nil, seed) })
	for _, p := range fault.Profiles() {
		p := p
		t.Run("Fault/"+p.Name, func(t *testing.T) {
			runElasticProfile(t, specFor, &p, seed)
		})
	}
}

// runElasticProfile drives one seeded elastic workload, optionally under a
// fault profile, and verifies the invariants on the healed fabric.
func runElasticProfile(t *testing.T, specFor SpecFactory, p *fault.Profile, seed int64) {
	t.Helper()
	layout := Layout(t)
	cfg := sim.DefaultConfig()
	var inj *fault.Injector
	label := "elastic/clean"
	if p != nil {
		inj = fault.New(seed, *p)
		cfg.Fault = inj
		label = "elastic/" + p.Name
	}
	f := cluster.New(specFor(t, cfg), sim.NewClock(), elasticStart)
	res := runElasticWorkload(t, f, layout, seed)
	if inj != nil {
		// Verification runs on a healed fabric: the invariants are about
		// what the fleet acknowledged, not about reads racing live faults.
		inj.Heal()
	}
	t.Logf("profile %s: commits=%d writeErrs=%d readErrs=%d size=%d",
		label, res.commits, res.writeErrs, res.readErrs, f.Size())
	if res.commits == 0 {
		t.Errorf("no transaction committed under profile %q (seed %d): churn plus faults starve the workload", label, seed)
	}
	reportViolations(t, seed, label, verifyElasticFinal(f, res))

	// Drain back to a single member: retirement reassigns shards and must
	// not lose a single acked write. (Partitioned fleets physically move
	// their data back into one partition here.)
	f.ScaleTo(sim.NewClock(), 1)
	reportViolations(t, seed, label+"+drain", verifyElasticFinal(f, res))

	tot := f.Totals()
	if !tot.Conserved() {
		t.Errorf("fleet accounting broken under profile %q: attempts %d != commits %d + aborts %d + shed %d (seed %d)",
			label, tot.Attempts, tot.Commits, tot.Aborts, tot.Shed, seed)
	}
}

// runElasticWorkload is runConformanceWorkload routed through the fleet,
// with membership churn injected from inside the worker stream: worker 0
// scales the fleet out, worker 1 fires the crash drill. Both tolerate
// architectures that cannot run the drill (partitioned fleets, engines
// without a Recoverer).
func runElasticWorkload(t *testing.T, f *cluster.Fleet, layout heap.Layout, seed int64) *conformanceResult {
	t.Helper()
	res := &conformanceResult{layout: layout, keys: make(map[uint64]*keyState)}
	for id := 0; id < confWorkers; id++ {
		lo, hi := workerKeys(id)
		for k := lo; k < hi; k++ {
			res.keys[k] = &keyState{owner: id}
		}
	}
	sim.RunGroup(confWorkers, func(id int, c *sim.Clock) int {
		rng := sim.NewRand(seed, id)
		lo, _ := workerKeys(id)
		done := 0
		for op := 0; op < confOps; op++ {
			if id == 0 && op == elasticScaleOp {
				f.ScaleTo(c, elasticScaleTo)
			}
			if id == 1 && op == elasticCrashOp {
				err := f.Crash(c, elasticCrashID)
				if err != nil && !errors.Is(err, cluster.ErrUnsupported) && !errors.Is(err, cluster.ErrNoMembers) {
					t.Errorf("crash drill: %v", err)
				}
			}
			key := lo + uint64(rng.Intn(confKeysEach))
			st := res.keys[key]
			if rng.Intn(100) < confWriteFrac {
				st.issued++
				seq := st.issued
				v := confVal(layout, key, uint64(id), seq)
				err := f.Run(c, key, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: confRetries}}, func(tx engine.Tx) error {
					return tx.Write(key, v)
				})
				if err != nil {
					res.mu.Lock()
					res.writeErrs++
					res.mu.Unlock()
					continue
				}
				st.acked = seq
				res.mu.Lock()
				res.commits++
				res.mu.Unlock()
				done++
				continue
			}
			opts := cluster.RunOpts{RunOpts: engine.RunOpts{Retries: confRetries}}
			if rng.Intn(100) < elasticReadFrac {
				// Read-only dispatch: session-affinity routing, with the
				// freshness refresh when the pin is off the owner.
				opts.ReadOnly = true
				opts.Session = id
			}
			var got []byte
			err := f.Run(c, key, opts, func(tx engine.Tx) error {
				v, rerr := tx.Read(key)
				if rerr != nil {
					return rerr
				}
				got = v
				return nil
			})
			if err != nil {
				res.mu.Lock()
				res.readErrs++
				res.mu.Unlock()
				continue
			}
			checkValue(res, key, st, got, "workload read")
			done++
		}
		return done
	})
	return res
}

// verifyElasticFinal re-reads every workload key through the fleet router
// (with bounded retries, on a healed fabric) and applies the per-key
// invariants, returning the violations including any recorded in flight.
func verifyElasticFinal(f *cluster.Fleet, res *conformanceResult) []string {
	c := sim.NewClock()
	for key, st := range res.keys {
		var got []byte
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			k := key
			err = f.Run(c, k, cluster.RunOpts{RunOpts: engine.RunOpts{Retries: confRetries}}, func(tx engine.Tx) error {
				v, rerr := tx.Read(k)
				if rerr != nil {
					return rerr
				}
				got = v
				return nil
			})
			if err == nil {
				break
			}
		}
		if err != nil {
			res.violate("final read: key %d: %v", key, err)
			continue
		}
		checkValue(res, key, st, got, "final read")
	}
	res.mu.Lock()
	defer res.mu.Unlock()
	return append([]string(nil), res.violations...)
}
