package enginetest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/fault"
)

// Coherence probe workload shape: ONE writer (worker 0) bumps a small hot
// key set with strictly increasing sequence numbers while several readers
// hammer the same keys — through the primary and, when the engine has read
// replicas, through replica reads. Every reader loads the key's acked
// floor BEFORE issuing the read, so "the value decoded below the floor" is
// a true stale read (the commit was acknowledged before the read started),
// never a race of the bookkeeping. The tiny key range keeps every page
// resident in every cache tier, which is exactly where stale copies hide.
const (
	cohKeyBase = 60_000
	cohKeys    = 4
	// cohKeyStride spreads the keys across distinct pages (64 values fit
	// one 4 KiB page), so invalidation fan-out is per page, not one page.
	cohKeyStride = 64
	cohRounds    = 24
	cohReaders   = 3
)

// cohKeyState is one key's intended history under a single writer.
type cohKeyState struct {
	issued atomic.Uint64 // highest seq handed to a write (acked or not)
	acked  atomic.Uint64 // highest seq whose commit was acknowledged
}

// runCoherenceProbe drives the stale-read probe, optionally under a fault
// profile and/or with group commit enabled, then verifies on a healed
// fabric.
func runCoherenceProbe(t *testing.T, factory Factory, p *fault.Profile, batch bool) {
	t.Helper()
	layout := Layout(t)
	seed := Seed()
	cfg := sim.DefaultConfig()
	var inj *fault.Injector
	label := "coherence/clean"
	if p != nil {
		inj = fault.New(seed, *p)
		cfg.Fault = inj
		label = "coherence/" + p.Name
	}
	cfg.Stats = sim.NewRegistry()
	e := factory(t, cfg)
	if batch {
		e = batched(e)
		label += "+batched"
	}
	hasReplica := engine.Caps(e).Reader != nil

	keys := make([]*cohKeyState, cohKeys)
	for i := range keys {
		keys[i] = &cohKeyState{}
	}
	var mu sync.Mutex
	var violations []string
	violate := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	// check applies the stale-read invariant to one observed value. floor
	// was loaded before the read began.
	check := func(where string, key uint64, ks *cohKeyState, floor uint64, v []byte) {
		k, w, seq, zero, ok := confDecode(v)
		if !ok {
			violate("%s: key %d: torn/garbled value %x", where, key, v[:32])
			return
		}
		if zero {
			if floor > 0 {
				violate("%s: key %d: read zero value after seq %d was acked", where, key, floor)
			}
			return
		}
		if k != key || w != 0 {
			violate("%s: key %d: foreign value (key=%d worker=%d)", where, key, k, w)
			return
		}
		if seq > ks.issued.Load() {
			violate("%s: key %d: fabricated seq %d", where, key, seq)
			return
		}
		if seq < floor {
			violate("%s: key %d: STALE READ seq %d < acked floor %d", where, key, seq, floor)
		}
	}

	var commits, writeErrs, readErrs atomic.Int64
	sim.RunGroup(1+cohReaders, func(id int, c *sim.Clock) int {
		done := 0
		if id == 0 {
			// The writer walks the key set round-robin so every page
			// keeps changing under the readers.
			for r := 0; r < cohRounds; r++ {
				for i := 0; i < cohKeys; i++ {
					key := uint64(cohKeyBase + i*cohKeyStride)
					ks := keys[i]
					seq := ks.issued.Add(1)
					v := confVal(layout, key, 0, seq)
					err := engine.Run(e, c, engine.RunOpts{Retries: confRetries}, func(tx engine.Tx) error {
						return tx.Write(key, v)
					})
					if err != nil {
						writeErrs.Add(1)
						continue
					}
					// Only an acknowledged commit raises the floor
					// readers hold the engine to.
					ks.acked.Store(seq)
					commits.Add(1)
					done++
				}
			}
			return done
		}
		rng := sim.NewRand(seed, id)
		for op := 0; op < cohRounds*cohKeys; op++ {
			i := rng.Intn(cohKeys)
			key := uint64(cohKeyBase + i*cohKeyStride)
			ks := keys[i]
			opts := engine.RunOpts{Retries: confRetries}
			where := "primary read"
			if hasReplica && op%2 == 1 {
				opts.Replica = 1
				where = "replica read"
			}
			floor := ks.acked.Load()
			var got []byte
			err := engine.Run(e, c, opts, func(tx engine.Tx) error {
				v, rerr := tx.Read(key)
				if rerr != nil {
					return rerr
				}
				got = v
				return nil
			})
			if err != nil {
				readErrs.Add(1)
				continue
			}
			check(where, key, ks, floor, got)
			done++
		}
		return done
	})

	// Verification runs on a healed fabric: by now every acked floor is
	// final, and the engine must serve at-least-floor values from every
	// read path it offers.
	if inj != nil {
		inj.Heal()
	}
	c := sim.NewClock()
	for i := 0; i < cohKeys; i++ {
		key := uint64(cohKeyBase + i*cohKeyStride)
		ks := keys[i]
		floor := ks.acked.Load()
		paths := []int{0}
		if hasReplica {
			paths = append(paths, 1)
		}
		for _, replica := range paths {
			var got []byte
			var err error
			for attempt := 0; attempt < 3; attempt++ {
				err = engine.Run(e, c, engine.RunOpts{Retries: confRetries, Replica: replica}, func(tx engine.Tx) error {
					v, rerr := tx.Read(key)
					if rerr != nil {
						return rerr
					}
					got = v
					return nil
				})
				if err == nil {
					break
				}
			}
			if err != nil {
				violate("final read (replica=%d): key %d: %v", replica, key, err)
				continue
			}
			check(fmt.Sprintf("final read (replica=%d)", replica), key, ks, floor, got)
		}
	}

	t.Logf("probe %s: commits=%d writeErrs=%d readErrs=%d staleHits=%d invalidations=%d",
		label, commits.Load(), writeErrs.Load(), readErrs.Load(),
		e.Stats().StaleHits.Load(), e.Stats().Invalidations.Load())
	if commits.Load() == 0 {
		t.Errorf("no write acked under %q (seed %d): the stale-read probe is vacuous", label, seed)
	}
	reportViolations(t, seed, label, violations)
	if t.Failed() && cfg.Stats != nil {
		t.Logf("per-site telemetry under %q:\n%s", label, cfg.Stats.String())
	}
}
