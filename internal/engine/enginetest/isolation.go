package enginetest

import (
	"flag"
	"fmt"
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/history"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/admission"
	"github.com/disagglab/disagg/internal/sim/fault"
)

// isoSeedsFlag is the schedule-exploration width: every Isolation variant
// sweeps this many derived seeds, so each engine is checked against that
// many distinct interleavings and fault schedules per profile. A failing
// seed is printed with every anomaly for exact replay.
var isoSeedsFlag = flag.Int("isoseeds", 8, "seeds swept per Isolation conformance variant")

// Isolation workload shape. Like the base conformance workload, each
// worker owns a disjoint key range (single-writer keys make the per-key
// version order exact); unlike it, every operation is recorded and the
// verdict comes from history.Check over the dependency graph, not from
// counter invariants. Foreign reads (always single-key) and
// replica-routed reads create the cross-session write-read and
// anti-dependency edges that make cycles possible at all.
const (
	isoWorkers  = 4
	isoOps      = 24
	isoKeysEach = 4
	isoKeyBase  = 80_000
	isoRetries  = 25

	// Contended variant: every worker read-modify-writes the same few hot
	// keys with the admission stack engaged. Lost updates are possible by
	// design (reads take no locks), so this variant is checked at Read
	// Committed — G0/G1a/G1b/G1c must still never happen.
	isoHotKeys  = 2
	isoHotBase  = 90_000
	isoHotOps   = 16
	isoHotRetry = 12
)

// isoSeed derives the i-th sweep seed from the suite seed.
func isoSeed(base int64, i int) int64 { return base + int64(i)*7919 }

// isolationWorkload drives the concurrent recorded phase. When contended
// is false, workers write only their own keys (read-modify-write or
// blind) and read foreign keys one at a time; when true, all workers
// hammer the shared hot keys. Replica-capable engines route a slice of
// reads through replica 0 — including re-reads of keys the session has
// itself written, the probe that turns a permanently stale replica cache
// into a session-order cycle.
func isolationWorkload(e engine.Engine, layout heap.Layout, seed int64, rec *history.Recorder, contended bool, adm engine.RunOpts) {
	isReader := engine.Caps(e).Reader != nil
	ops := isoOps
	if contended {
		ops = isoHotOps
	}
	sim.RunGroup(isoWorkers, func(id int, c *sim.Clock) int {
		rng := sim.NewRand(seed, id)
		seq := map[uint64]uint64{}
		run := func(replica int, fn func(tx engine.Tx) error) error {
			opts := adm
			opts.Retries = isoRetries
			if contended {
				opts.Retries = isoHotRetry
			}
			opts.Record, opts.Session, opts.Replica = rec, id, replica
			return engine.Run(e, c, opts, fn)
		}
		write := func(key uint64, readFirst bool) {
			seq[key]++
			v := confVal(layout, key, uint64(id), seq[key])
			err := run(0, func(tx engine.Tx) error {
				if readFirst {
					if _, err := tx.Read(key); err != nil {
						return err
					}
				}
				return tx.Write(key, v)
			})
			if err != nil {
				// Unacknowledged: the recorded outcome (aborted vs
				// indeterminate) is what the checker reasons from. Burn
				// the seq so no (key, worker, seq) value is ever reused.
				seq[key]++
			}
		}
		read := func(key uint64, replica int) {
			_ = run(replica, func(tx engine.Tx) error {
				_, err := tx.Read(key)
				return err
			})
		}
		ownKey := func() uint64 {
			if contended {
				return isoHotBase + uint64(rng.Intn(isoHotKeys))
			}
			return isoKeyBase + uint64(id)*isoKeysEach + uint64(rng.Intn(isoKeysEach))
		}
		foreignKey := func() uint64 {
			if contended {
				return isoHotBase + uint64(rng.Intn(isoHotKeys))
			}
			other := (id + 1 + rng.Intn(isoWorkers-1)) % isoWorkers
			return isoKeyBase + uint64(other)*isoKeysEach + uint64(rng.Intn(isoKeysEach))
		}
		for op := 0; op < ops; op++ {
			switch roll := rng.Intn(100); {
			case roll < 55:
				write(ownKey(), true) // read-modify-write
			case roll < 70:
				write(ownKey(), false) // blind write
			case roll < 90:
				read(foreignKey(), 0)
			default:
				if isReader {
					// Replica probe: re-read a key this session owns on
					// replica 0 (RunOpts.Replica is 1-based).
					read(ownKey(), 1)
				} else {
					read(foreignKey(), 0)
				}
			}
		}
		return ops
	})
}

// isolationVerify appends the verifier session: one recorded single-key
// read per workload key, issued after the caller healed the fabric. In
// history terms this is the "acked writes are visible" check — a key
// whose final read surfaces an old version shows up as a dependency cycle
// through the verifier's session-order edges. Reads are single-key on
// purpose: the engines offer no multi-key read snapshots, so a multi-key
// verifier transaction could legitimately observe a fractured state.
func isolationVerify(e engine.Engine, rec *history.Recorder, contended bool, adm engine.RunOpts) {
	c := sim.NewClock()
	verify := func(key uint64) {
		for attempt := 0; attempt < 3; attempt++ {
			opts := adm
			opts.Retries = isoRetries
			opts.Record, opts.Session = rec, isoWorkers
			err := engine.Run(e, c, opts, func(tx engine.Tx) error {
				_, err := tx.Read(key)
				return err
			})
			if err == nil {
				return
			}
		}
	}
	if contended {
		for k := uint64(0); k < isoHotKeys; k++ {
			verify(isoHotBase + k)
		}
		return
	}
	for id := 0; id < isoWorkers; id++ {
		for k := uint64(0); k < isoKeysEach; k++ {
			verify(isoKeyBase + uint64(id)*isoKeysEach + k)
		}
	}
}

// reportAnomalies fails the test with every anomaly, its minimal witness
// cycle, and the exact replay command.
func reportAnomalies(t *testing.T, rep *history.Report, label string, seed int64, mode string) {
	t.Helper()
	if rep.Ok() {
		return
	}
	for _, a := range rep.Anomalies {
		t.Errorf("[%s %s] %s", label, mode, a)
	}
	t.Errorf("%d isolation anomaly(ies) under %q (%s, %s) — replay with: go test -run Conformance/Isolation -seed=%d",
		len(rep.Anomalies), label, mode, rep.Summary(), seed)
}

// checkIsolationHistory runs the checker over the recorded ops. The
// single-writer workload is checked at Serializable with session order in
// BOTH version-order modes: program order (exact even for indeterminate
// writes) and commit stamps (additionally validating that every engine
// exposes a sound commit timestamp). The contended workload has
// multi-writer keys, so only stamp order applies, at Read Committed.
func checkIsolationHistory(t *testing.T, rec *history.Recorder, label string, seed int64, contended bool) {
	t.Helper()
	ops := rec.Ops()
	if contended {
		rep, err := history.Check(ops, history.Opts{Level: history.ReadCommitted})
		if err != nil {
			t.Fatalf("[%s] invalid history: %v (replay: -seed=%d)", label, err, seed)
		}
		reportAnomalies(t, rep, label, seed, "stamp/read-committed")
		return
	}
	exact, err := history.Check(ops, history.Opts{Level: history.Serializable, SessionOrder: true, SingleWriter: true})
	if err != nil {
		t.Fatalf("[%s] invalid history: %v (replay: -seed=%d)", label, err, seed)
	}
	reportAnomalies(t, exact, label, seed, "program-order/serializable")
	stamp, err := history.Check(ops, history.Opts{Level: history.Serializable, SessionOrder: true})
	if err != nil {
		t.Fatalf("[%s] invalid history: %v (replay: -seed=%d)", label, err, seed)
	}
	reportAnomalies(t, stamp, label, seed, "stamp/serializable")
}

// checkHistoryStats cross-checks the recorded history against the
// engine's counters: every Run call is exactly one logical op, every
// execution (including conflict retries) exactly one attempt, and each
// attempt's outcome lands in exactly one engine counter. This is the
// retry-lineage conservation law — an aborted-then-retried transaction
// can be neither lost nor double-counted as a phantom second operation.
func checkHistoryStats(t *testing.T, e engine.Engine, rec *history.Recorder, label string, seed int64) {
	t.Helper()
	st := e.Stats()
	nops, attempts, _ := rec.Counts()
	var committed, aborted, indet, shed int
	for _, op := range rec.Ops() {
		for _, att := range op.Attempts {
			switch att.Outcome {
			case history.Committed:
				committed++
			case history.Aborted:
				aborted++
			case history.Indeterminate, history.Open:
				indet++
			case history.Shed:
				shed++
			}
		}
	}
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("[%s] history/stats conservation: %s (replay: -seed=%d)", label, fmt.Sprintf(format, args...), seed)
	}
	if got := st.Attempts.Load(); int64(attempts) != got {
		fail("recorded %d attempts, engine counted %d", attempts, got)
	}
	if got := st.Retries.Load(); int64(attempts-nops) != got {
		fail("attempts(%d) - ops(%d) = %d retried executions, engine counted %d — a retried op must stay ONE logical op",
			attempts, nops, attempts-nops, got)
	}
	if got := st.Commits.Load(); int64(committed) != got {
		fail("recorded %d commits, engine counted %d", committed, got)
	}
	if got := st.Shed.Load(); int64(shed) != got {
		fail("recorded %d shed attempts, engine counted %d", shed, got)
	}
	if got := st.Aborts.Load(); int64(aborted+indet) != got {
		fail("recorded %d aborted + %d indeterminate attempts, engine counted %d aborts", aborted, indet, got)
	}
	if got := st.Indeterminates.Load(); int64(indet) != got {
		fail("recorded %d indeterminate attempts, Stats.Indeterminates = %d", indet, got)
	}
}

// runIsolationVariant is one (profile, seed) cell of the sweep: build a
// fresh engine, run the recorded workload under live faults, heal, run
// the verifier session, then check the history and the conservation laws.
func runIsolationVariant(t *testing.T, factory Factory, p *fault.Profile, seed int64, contended, batch bool) {
	t.Helper()
	layout := Layout(t)
	cfg := sim.DefaultConfig()
	var inj *fault.Injector
	label := "clean"
	if p != nil {
		inj = fault.New(seed, *p)
		cfg.Fault = inj
		cfg.Stats = sim.NewRegistry()
		label = p.Name
	}
	if contended {
		label = "contended/" + label
	}
	if batch {
		label = "batched/" + label
	}
	e := factory(t, cfg)
	if batch {
		e = batched(e)
	}
	rec := history.NewRecorder()
	var adm engine.RunOpts
	if contended {
		// The full admission stack, as in the Overload variants: sheds
		// and budget-exhausted retries must reconcile with the history.
		adm.Budget = admission.NewBudget(0.5, 8)
		adm.Shed = admission.NewShedder(isoWorkers / 2)
	}
	isolationWorkload(e, layout, seed, rec, contended, adm)
	if inj != nil {
		// The verifier runs on a healed fabric: the history check is
		// about what the engine acknowledged, not reads racing faults.
		inj.Heal()
	}
	isolationVerify(e, rec, contended, adm)
	nops, attempts, events := rec.Counts()
	if inj != nil {
		t.Logf("isolation %s seed=%d: ops=%d attempts=%d events=%d faults={drops=%d dups=%d tears=%d delays=%d}",
			label, seed, nops, attempts, events, inj.Drops.Load(), inj.Dups.Load(), inj.Tears.Load(), inj.Delays.Load())
	} else {
		t.Logf("isolation %s seed=%d: ops=%d attempts=%d events=%d", label, seed, nops, attempts, events)
	}
	if nops == 0 {
		t.Fatalf("isolation %s: nothing recorded (seed %d)", label, seed)
	}
	checkIsolationHistory(t, rec, label, seed, contended)
	checkHistoryStats(t, e, rec, label, seed)
	if t.Failed() && cfg.Stats != nil {
		t.Logf("per-site telemetry under %q:\n%s", label, cfg.Stats.String())
	}
}

// runIsolation sweeps the seeds for one variant configuration.
func runIsolation(t *testing.T, factory Factory, p *fault.Profile, contended, batch bool) {
	t.Helper()
	base := Seed()
	for i := 0; i < *isoSeedsFlag; i++ {
		seed := isoSeed(base, i)
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			runIsolationVariant(t, factory, p, seed, contended, batch)
		})
	}
}
