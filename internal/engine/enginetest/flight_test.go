package enginetest

import (
	"strings"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/engine/monolithic"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/fault"
)

// TestFlightDumpOnForcedInvariantFailure proves the black box actually
// fires: a real engine runs a faulted seeded workload, the recorded
// history is then corrupted so the final verification must report a
// violation, and the dump the suite would log on that failure has to be
// present, labeled per worker, and bounded by the ring capacity.
func TestFlightDumpOnForcedInvariantFailure(t *testing.T) {
	cfg := sim.DefaultConfig()
	inj := fault.New(Seed(), fault.Profile{Name: "delays", Delay: 0.5, MaxDelay: 2 * time.Millisecond})
	cfg.Fault = inj
	layout := Layout(t)
	e := monolithic.New(cfg, layout, 64)

	res := runConformanceWorkload(e, layout, Seed())
	inj.Heal()

	// Forge the history: claim an ack one past the last issued write on
	// some key the workload actually touched. Every re-read of that key
	// now observes "stale seq < acked" — a guaranteed invariant failure.
	var forged uint64
	for key, st := range res.keys {
		if st.issued > 0 {
			st.acked = st.issued + 1
			st.issued = st.acked
			forged = key
			break
		}
	}
	if forged == 0 {
		t.Fatalf("workload issued no writes to forge")
	}

	violations := verifyFinalState(e, res)
	if len(violations) == 0 {
		t.Fatalf("forged history produced no violations — the invariant check is dead")
	}

	dump := res.box.Dump()
	if dump == "" {
		t.Fatalf("invariant failure with an empty flight-recorder dump")
	}
	for _, want := range []string{"--- round 1 worker 0 ---", "--- verify pass", "retained of"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}
	// Bounded: one recorder per worker plus the verify passes, each ring
	// capped at confFlightEvents — regardless of how many ops ran.
	if res.box.Size() > confWorkers+4 {
		t.Errorf("box grew %d recorders, want <= workers + verify passes", res.box.Size())
	}
	if lines := strings.Count(dump, "\n"); lines > res.box.Size()*(confFlightEvents+2) {
		t.Errorf("dump has %d lines; rings are not bounding retention", lines)
	}
}
