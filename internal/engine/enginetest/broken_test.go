package enginetest

import (
	"sync"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
)

// brokenEngine is a deliberately buggy map-backed engine: it acknowledges
// commits but keeps no durable state, so Recover comes back empty — lost
// acked writes. It exists to prove the conformance checker actually fails
// engines that violate durability (a suite that can't fail is no suite).
type brokenEngine struct {
	mu      sync.Mutex
	vals    map[uint64][]byte
	stats   engine.Stats
	crashed bool
}

type brokenTx struct{ e *brokenEngine }

func (tx brokenTx) Read(key uint64) ([]byte, error) {
	tx.e.mu.Lock()
	defer tx.e.mu.Unlock()
	if v, ok := tx.e.vals[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	return make([]byte, 64), nil
}

func (tx brokenTx) Write(key uint64, val []byte) error {
	tx.e.mu.Lock()
	defer tx.e.mu.Unlock()
	cp := make([]byte, len(val))
	copy(cp, val)
	tx.e.vals[key] = cp
	return nil
}

func (e *brokenEngine) Name() string         { return "broken" }
func (e *brokenEngine) Stats() *engine.Stats { return &e.stats }
func (e *brokenEngine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.mu.Lock()
	crashed := e.crashed
	e.mu.Unlock()
	if crashed {
		return engine.ErrUnavailable
	}
	if err := fn(brokenTx{e}); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	e.stats.Commits.Add(1)
	return nil
}

// Crash wipes everything; Recover restores nothing. Every acked write is
// lost — the durability invariant the suite must catch.
func (e *brokenEngine) Crash() {
	e.mu.Lock()
	e.crashed = true
	e.vals = make(map[uint64][]byte)
	e.mu.Unlock()
}

func (e *brokenEngine) Recover(c *sim.Clock) (time.Duration, error) {
	e.mu.Lock()
	e.crashed = false
	e.mu.Unlock()
	return 0, nil
}

// TestSuiteCatchesBrokenEngine runs the conformance workload against the
// broken engine and asserts the checker reports violations after a
// crash/recover cycle. If this test fails, the suite has lost its teeth.
func TestSuiteCatchesBrokenEngine(t *testing.T) {
	e := &brokenEngine{vals: make(map[uint64][]byte)}
	layout := Layout(t)
	seed := Seed()
	res := runConformanceWorkload(e, layout, seed)
	if res.commits == 0 {
		t.Fatal("workload made no progress on the broken engine")
	}
	// Pre-crash the state is fine (the bug is durability, not visibility).
	if v := verifyFinalState(e, res); len(v) != 0 {
		t.Fatalf("unexpected pre-crash violations: %v", v)
	}
	e.Crash()
	if _, err := e.Recover(sim.NewClock()); err != nil {
		t.Fatal(err)
	}
	violations := verifyFinalState(e, res)
	if len(violations) == 0 {
		t.Fatal("conformance checker passed an engine that loses every acked write on recovery")
	}
	t.Logf("checker correctly flagged %d violations, e.g. %q", len(violations), violations[0])
}
