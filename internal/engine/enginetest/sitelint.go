package enginetest

import (
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/profile"
)

// runSiteLint drives a full seeded workload — plus every optional
// capability path (checkpoint, crash/recover, replica reads) — with a
// stats registry attached, then holds every site label the engine
// registered to the `<component>.<op>` taxonomy profile.LintSite enforces.
// A label outside the taxonomy would silently mis-attribute latency in
// critical-path analysis and dodge fault injection site filters, so drift
// fails the conformance suite rather than surfacing in a skewed table
// months later.
func runSiteLint(t *testing.T, factory Factory, seed int64) {
	cfg := sim.DefaultConfig()
	cfg.Stats = sim.NewRegistry()
	layout := Layout(t)
	e := factory(t, cfg)

	res := runConformanceWorkload(e, layout, seed)
	reportViolations(t, seed, "sitelint", verifyFinalState(e, res))

	caps := engine.Caps(e)
	c := sim.NewClock()
	if caps.Checkpointer != nil {
		if err := caps.Checkpointer.Checkpoint(c); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	}
	if caps.Reader != nil {
		err := caps.Reader.ReadReplica(c, 0, func(tx engine.Tx) error {
			_, err := tx.Read(confKeyBase)
			return err
		})
		if err != nil {
			t.Fatalf("replica read: %v", err)
		}
	}
	if caps.Recoverer != nil {
		caps.Recoverer.Crash()
		if _, err := caps.Recoverer.Recover(sim.NewClock()); err != nil {
			t.Fatalf("recover: %v", err)
		}
	}

	sites := cfg.Stats.Sites()
	if len(sites) == 0 {
		t.Fatalf("no telemetry sites registered — the workload must exercise instrumented substrate")
	}
	for _, site := range sites {
		if err := profile.LintSite(site); err != nil {
			t.Errorf("site label lint: %v", err)
		}
	}
}
