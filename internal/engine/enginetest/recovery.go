package enginetest

import (
	"runtime"
	"sync"
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/fault"
)

// The recovery drills exercise the log-lifecycle subsystem end to end:
// checkpoint rounds bound the log while commits keep landing, then a
// crash/recover cycle must surface every acked commit — those covered by
// checkpointed page state and those still in the retained log tail. The
// drills deliberately target the windows the checkpoint ordering protects:
// commits acked during a round, a crash right after a round, and a crash
// in the publish→truncate window (held open by failing every truncation
// RPC).

// ckptRetries bounds checkpoint retries under fault profiles; a round can
// legitimately fail when drops cost it quorum or tear its snapshot upload.
const ckptRetries = 5

// checkpointWithRetry runs checkpoint rounds until one succeeds, returning
// the last error (nil on success). Retrying is safe by construction: a
// failed flush leaves the horizon unchanged and a failed truncation is
// idempotent debt the next round retires.
func checkpointWithRetry(cp engine.Checkpointer, c *sim.Clock, attempts int) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = cp.Checkpoint(c); err == nil {
			return nil
		}
	}
	return err
}

// runRecoveryDrill is the core variant: workload, checkpoint, more
// commits, second checkpoint, a final unchecked tail, then crash/recover
// and full invariant verification on a healed fabric. Under a fault
// profile the checkpoint rounds themselves run against the faulty fabric;
// a round may fail, but whatever horizon it published must never cost an
// acked commit.
func runRecoveryDrill(t *testing.T, factory Factory, p *fault.Profile, seed int64) {
	t.Helper()
	layout := Layout(t)
	cfg := sim.DefaultConfig()
	var inj *fault.Injector
	label := "recovery/clean"
	if p != nil {
		inj = fault.New(seed, *p)
		cfg.Fault = inj
		cfg.Stats = sim.NewRegistry()
		label = "recovery/" + p.Name
	}
	e := factory(t, cfg)
	cp := engine.Caps(e).Checkpointer
	if cp == nil {
		t.Skip("engine does not implement Checkpointer")
	}
	if engine.Caps(e).Recoverer == nil {
		t.Skip("engine does not implement Recoverer")
	}

	// Phase 1: seeded workload, then a checkpoint round.
	res := runConformanceWorkload(e, layout, seed)
	ckptErr := checkpointWithRetry(cp, sim.NewClock(), ckptRetries)
	h1 := cp.RecoveryHorizon()
	if p == nil {
		if ckptErr != nil {
			t.Fatalf("checkpoint on clean fabric: %v", ckptErr)
		}
		if h1 == 0 {
			t.Fatal("checkpoint published no recovery horizon despite durable commits")
		}
	}

	// Phase 2: commits above the horizon, a second round, then a tail
	// that stays deliberately unchecked — recovery must stitch all three
	// regions back together.
	extendConformanceWorkload(e, res, seed+1)
	checkpointWithRetry(cp, sim.NewClock(), ckptRetries)
	h2 := cp.RecoveryHorizon()
	if h2 < h1 {
		t.Errorf("recovery horizon moved backwards: %d -> %d", h1, h2)
	}
	extendConformanceWorkload(e, res, seed+2)

	if inj != nil {
		inj.Heal()
	}
	if d, ok := e.(durableLSNer); ok && h2 > d.DurableLSN() {
		t.Errorf("recovery horizon %d above durable LSN %d: truncation could discard unflushed commits", h2, d.DurableLSN())
	}
	reportViolations(t, seed, label, verifyFinalState(e, res))
	crashRecoverVerify(t, e, res, seed, label)
	if after := cp.RecoveryHorizon(); after < h2 {
		t.Errorf("recovery horizon moved backwards across crash: %d -> %d", h2, after)
	}
	checkConservation(t, e, label, seed)
	if t.Failed() {
		if cfg.Stats != nil {
			t.Logf("per-site telemetry under %q:\n%s", label, cfg.Stats.String())
		}
		t.Logf("flight-recorder timelines under %q:\n%s", label, res.box.Dump())
	}
}

// runConcurrentCheckpoint races checkpoint rounds against the live
// workload from a separate goroutine — the regime the capture-before-flush
// ordering exists for: a commit acked while a round's flush runs lands
// above the captured horizon and must survive in the retained tail.
func runConcurrentCheckpoint(t *testing.T, factory Factory, seed int64) {
	t.Helper()
	layout := Layout(t)
	e := factory(t, sim.DefaultConfig())
	cp := engine.Caps(e).Checkpointer
	if cp == nil {
		t.Skip("engine does not implement Checkpointer")
	}

	// The checkpointer runs on its own goroutine inside the same worker
	// group as the ops — yielding between rounds so the scheduler
	// interleaves rounds with live commits rather than letting the short
	// workload finish first. stop closes once both workload passes are
	// done; the checkpointer keeps pace until then.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	rounds := 0
	var firstErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := sim.NewClock()
		for {
			if err := cp.Checkpoint(c); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			mu.Lock()
			rounds++
			mu.Unlock()
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()
	res := runConformanceWorkload(e, layout, seed)
	extendConformanceWorkload(e, res, seed+1)
	close(stop)
	wg.Wait()

	if firstErr != nil {
		t.Errorf("concurrent checkpoint on clean fabric: %v", firstErr)
	}
	t.Logf("checkpoint rounds racing the workload: %d (horizon %d)", rounds, cp.RecoveryHorizon())
	// Whatever horizon the racing rounds published must still be covered
	// by durable state — and a final quiesced round must succeed.
	if err := cp.Checkpoint(sim.NewClock()); err != nil {
		t.Errorf("quiesced checkpoint after the race: %v", err)
	}
	if cp.RecoveryHorizon() == 0 {
		t.Error("no recovery horizon published after racing rounds plus a quiesced round")
	}
	reportViolations(t, seed, "recovery/concurrent", verifyFinalState(e, res))
	crashRecoverVerify(t, e, res, seed, "recovery/concurrent")
	checkConservation(t, e, "recovery/concurrent", seed)
}

// tornTruncationProfile drops every distributed truncation RPC while
// leaving the rest of the fabric clean: the round's flush and horizon
// publish succeed, but the log below the horizon survives — the
// crash-in-the-publish→truncate-window scenario, held open
// deterministically. Engines whose truncation is purely node-local see no
// injectable site and simply complete the round; the drill still verifies
// their recovery with a fresh horizon.
func tornTruncationProfile() fault.Profile {
	return fault.Profile{
		Name: "torn-truncation",
		Drop: 1,
		Sites: []string{
			"logstore.truncate",
			"raft.compact",
			"obj.delete",
		},
	}
}

// runTornTruncation checkpoints with every truncation RPC failing, crashes
// in the held-open window (log retained below the published horizon —
// recovery must not double-apply or refuse it), then heals and verifies
// the next round retires the truncation debt.
func runTornTruncation(t *testing.T, factory Factory, seed int64) {
	t.Helper()
	layout := Layout(t)
	inj := fault.New(seed, tornTruncationProfile())
	inj.Heal() // the workload runs clean; only the truncation step is faulted
	cfg := sim.DefaultConfig()
	cfg.Fault = inj
	cfg.Stats = sim.NewRegistry()
	e := factory(t, cfg)
	cp := engine.Caps(e).Checkpointer
	if cp == nil {
		t.Skip("engine does not implement Checkpointer")
	}
	if engine.Caps(e).Recoverer == nil {
		t.Skip("engine does not implement Recoverer")
	}

	res := runConformanceWorkload(e, layout, seed)
	inj.Enable()
	err := cp.Checkpoint(sim.NewClock())
	if h := cp.RecoveryHorizon(); h == 0 {
		// Only truncation sites are faulted, so a missing horizon means
		// the flush path touched a truncation site — a layering bug.
		t.Errorf("horizon did not publish under truncation-only faults (err=%v)", err)
	}
	inj.Heal()

	crashRecoverVerify(t, e, res, seed, "recovery/torn-truncation")

	// Healed: more commits, and the next round must retire the retained
	// log debt (truncation is idempotent and retryable).
	extendConformanceWorkload(e, res, seed+1)
	if err := checkpointWithRetry(cp, sim.NewClock(), ckptRetries); err != nil {
		t.Errorf("healed checkpoint did not retire truncation debt: %v", err)
	}
	crashRecoverVerify(t, e, res, seed, "recovery/torn-truncation+healed")
	checkConservation(t, e, "recovery/torn-truncation", seed)
	if t.Failed() {
		t.Logf("per-site telemetry:\n%s", cfg.Stats.String())
		t.Logf("flight-recorder timelines:\n%s", res.box.Dump())
	}
}
