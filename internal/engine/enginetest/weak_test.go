package enginetest

import (
	"sync"
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/history"
	"github.com/disagglab/disagg/internal/sim"
)

// This file proves the history checker has teeth end-to-end: two
// deliberately weakened engines are driven through the real engine.Run
// recording pipeline with choreographed interleavings, and the checker
// must name the exact anomaly each weakness produces — G1c for an engine
// with dirty reads, write skew for an engine with unvalidated snapshot
// reads. A checker that cannot fail these is not checking anything.

// dirtyEngine applies writes to the shared map the moment tx.Write is
// called — no staging, no locks — so concurrent transactions read each
// other's uncommitted writes.
type dirtyEngine struct {
	mu    sync.Mutex
	vals  map[uint64][]byte
	stats engine.Stats
}

type dirtyTx struct{ e *dirtyEngine }

func (tx dirtyTx) Read(key uint64) ([]byte, error) {
	tx.e.mu.Lock()
	defer tx.e.mu.Unlock()
	if v, ok := tx.e.vals[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	return make([]byte, 8), nil
}

func (tx dirtyTx) Write(key uint64, val []byte) error {
	tx.e.mu.Lock()
	defer tx.e.mu.Unlock()
	cp := make([]byte, len(val))
	copy(cp, val)
	tx.e.vals[key] = cp
	return nil
}

func (e *dirtyEngine) Name() string         { return "weak-dirty" }
func (e *dirtyEngine) Stats() *engine.Stats { return &e.stats }
func (e *dirtyEngine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if err := fn(dirtyTx{e}); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	e.stats.Commits.Add(1)
	return nil
}

// TestCheckerCatchesDirtyReadCycle choreographs the classic wr-wr cycle
// on the dirty engine: T1 writes k1 and then reads T2's in-flight write
// of k2; T2 reads T1's in-flight write of k1. Both commit, so each read
// is a committed-writer read — but the two reads-from edges point in
// opposite directions, an unserializable cycle already at Read Committed
// (Adya's G1c).
func TestCheckerCatchesDirtyReadCycle(t *testing.T) {
	e := &dirtyEngine{vals: make(map[uint64][]byte)}
	rec := history.NewRecorder()
	const k1, k2 = 1, 2
	v1, v2 := []byte("dirty-v1"), []byte("dirty-v2")
	t1Wrote := make(chan struct{})
	t2Read := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := sim.NewClock()
		err := engine.Run(e, c, engine.RunOpts{Record: rec, Session: 0}, func(tx engine.Tx) error {
			if err := tx.Write(k1, v1); err != nil { // visible to T2 immediately
				return err
			}
			close(t1Wrote)
			<-t2Read // T2 has both written k2 and read our k1
			_, err := tx.Read(k2)
			return err
		})
		if err != nil {
			t.Errorf("T1: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		c := sim.NewClock()
		err := engine.Run(e, c, engine.RunOpts{Record: rec, Session: 1}, func(tx engine.Tx) error {
			<-t1Wrote
			if err := tx.Write(k2, v2); err != nil {
				return err
			}
			if _, err := tx.Read(k1); err != nil { // T1's uncommitted write
				return err
			}
			close(t2Read)
			return nil
		})
		if err != nil {
			t.Errorf("T2: %v", err)
		}
	}()
	wg.Wait()

	// Each key has one writer, so program order pins the version chains.
	rep, err := history.Check(rec.Ops(), history.Opts{Level: history.ReadCommitted, SingleWriter: true})
	if err != nil {
		t.Fatal(err)
	}
	assertAnomaly(t, rep, "G1c")
}

// snapshotEngine reads from a stable snapshot taken at transaction begin
// and applies staged writes at commit without any validation — first
// committer does not win, nobody wins. Snapshot reads rule out dirty and
// non-repeatable reads, so the only anomaly left is the classic one:
// write skew.
type snapshotEngine struct {
	mu    sync.Mutex
	vals  map[uint64][]byte
	stats engine.Stats
}

func (e *snapshotEngine) Name() string         { return "weak-snapshot" }
func (e *snapshotEngine) Stats() *engine.Stats { return &e.stats }
func (e *snapshotEngine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	e.mu.Lock()
	snap := make(map[uint64][]byte, len(e.vals))
	for k, v := range e.vals {
		snap[k] = v
	}
	e.mu.Unlock()
	st := engine.NewStagedTx(func(key uint64) ([]byte, error) {
		if v, ok := snap[key]; ok {
			out := make([]byte, len(v))
			copy(out, v)
			return out, nil
		}
		return make([]byte, 8), nil
	})
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	e.mu.Lock()
	for _, k := range keys {
		cp := make([]byte, len(writes[k]))
		copy(cp, writes[k])
		e.vals[k] = cp
	}
	e.mu.Unlock()
	e.stats.Commits.Add(1)
	return nil
}

// TestCheckerCatchesWriteSkew runs the textbook schedule on the snapshot
// engine: T1 reads k2 and writes k1, T2 reads k1 and writes k2, with both
// snapshots taken before either commit. Each read observes the initial
// state, missing the other transaction's write — two anti-dependency
// edges forming a cycle. Legal at Read Committed, write skew at
// Serializable.
func TestCheckerCatchesWriteSkew(t *testing.T) {
	e := &snapshotEngine{vals: make(map[uint64][]byte)}
	rec := history.NewRecorder()
	const k1, k2 = 11, 12
	v1, v2 := []byte("skew-v1"), []byte("skew-v2")
	begun := make(chan struct{}, 2)
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	txBody := func(session int, readKey, writeKey uint64, val []byte) {
		defer wg.Done()
		c := sim.NewClock()
		err := engine.Run(e, c, engine.RunOpts{Record: rec, Session: session}, func(tx engine.Tx) error {
			begun <- struct{}{} // snapshot taken; rendezvous before reading
			<-proceed
			if _, err := tx.Read(readKey); err != nil {
				return err
			}
			return tx.Write(writeKey, val)
		})
		if err != nil {
			t.Errorf("T%d: %v", session+1, err)
		}
	}
	wg.Add(2)
	go txBody(0, k2, k1, v1)
	go txBody(1, k1, k2, v2)
	<-begun
	<-begun
	close(proceed) // both transactions hold pre-commit snapshots
	wg.Wait()

	rc, err := history.Check(rec.Ops(), history.Opts{Level: history.ReadCommitted, SingleWriter: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Ok() {
		t.Errorf("write-skew schedule must be legal at Read Committed, got: %v", rc.Anomalies)
	}
	ser, err := history.Check(rec.Ops(), history.Opts{Level: history.Serializable, SingleWriter: true})
	if err != nil {
		t.Fatal(err)
	}
	assertAnomaly(t, ser, "write-skew")
}

// assertAnomaly requires the report to contain the anomaly class with a
// non-empty witness cycle.
func assertAnomaly(t *testing.T, rep *history.Report, class string) {
	t.Helper()
	for _, a := range rep.Anomalies {
		if a.Class == class {
			if len(a.Cycle) == 0 {
				t.Errorf("%s reported without a witness cycle: %s", class, a.Message)
			}
			t.Logf("checker caught it: %s", a)
			return
		}
	}
	t.Errorf("checker missed %s; report: %s, anomalies: %v", class, rep.Summary(), rep.Anomalies)
}
