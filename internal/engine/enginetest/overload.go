package enginetest

import (
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/admission"
	"github.com/disagglab/disagg/internal/sim/fault"
)

// Overload workload shape: many workers hammering few hot keys, the
// regime where the pre-fix zero-delay retry loop livelocked. Unlike the
// base conformance workload there is no per-key ownership, so this
// variant checks liveness and accounting, not value histories.
const (
	ovWorkers   = 8
	ovHotKeys   = 2
	ovOps       = 24
	ovKeyBase   = 60_000
	ovRetries   = 12
	ovTimeBound = 30 * time.Second // virtual; a livelocked run never gets here
)

// checkConservation asserts the engine accounting invariant the overload
// layer introduced: every attempt offered to the engine landed in exactly
// one of Commits, Aborts, or Shed.
func checkConservation(t *testing.T, e engine.Engine, label string, seed int64) {
	t.Helper()
	st := e.Stats()
	a, cm, ab, sh := st.Attempts.Load(), st.Commits.Load(), st.Aborts.Load(), st.Shed.Load()
	if a != cm+ab+sh {
		t.Errorf("%s: attempts accounting violated: attempts %d != commits %d + aborts %d + shed %d (replay: -seed=%d)",
			label, a, cm, ab, sh, seed)
	}
	if a == 0 {
		t.Errorf("%s: engine counted no attempts — the conservation check is vacuous", label)
	}
}

// runOverloadProfile drives the hot-key storm under one fault profile with
// the full admission stack engaged (default backoff, shared retry budget,
// load shedder) and checks that (a) the run terminates within a bounded
// virtual makespan — failed attempts must charge time — and (b) the
// attempts accounting conserves.
func runOverloadProfile(t *testing.T, factory Factory, p fault.Profile, seed int64) {
	t.Helper()
	layout := Layout(t)
	inj := fault.New(seed, p)
	cfg := sim.DefaultConfig()
	cfg.Fault = inj
	cfg.Stats = sim.NewRegistry()
	e := factory(t, cfg)

	budget := admission.NewBudget(0.5, 8)
	shed := admission.NewShedder(ovWorkers / 2)
	opts := engine.RunOpts{Retries: ovRetries, Budget: budget, Shed: shed}

	res := sim.RunGroup(ovWorkers, func(id int, c *sim.Clock) int {
		rng := sim.NewRand(seed, id)
		done := 0
		for op := 0; op < ovOps; op++ {
			key := ovKeyBase + uint64(rng.Intn(ovHotKeys))
			v := confVal(layout, key, uint64(id), uint64(op+1))
			if err := engine.Run(e, c, opts, func(tx engine.Tx) error {
				cur, err := tx.Read(key)
				if err != nil {
					return err
				}
				_ = cur
				return tx.Write(key, v)
			}); err == nil {
				done++
			}
		}
		return done
	})

	st := e.Stats()
	t.Logf("profile %s: makespan=%v commits=%d aborts=%d shed=%d retries=%d backoffWait=%v budget=%+v shedder=%+v",
		p.Name, res.MakeSpan, st.Commits.Load(), st.Aborts.Load(), st.Shed.Load(),
		st.Retries.Load(), time.Duration(st.BackoffWait.Load()), budget.Stats(), shed.Stats())

	if res.MakeSpan <= 0 {
		t.Errorf("profile %s: overload run charged no virtual time — retries are free again (seed %d)", p.Name, seed)
	}
	if res.MakeSpan > ovTimeBound {
		t.Errorf("profile %s: virtual makespan %v exceeds bound %v (seed %d)", p.Name, res.MakeSpan, ovTimeBound, seed)
	}
	checkConservation(t, e, "overload/"+p.Name, seed)
	if t.Failed() {
		t.Logf("per-site telemetry under profile %q:\n%s", p.Name, cfg.Stats.String())
	}
}
