// Package serverless implements the PolarDB Serverless architecture of
// §3.1: storage disaggregation (a quorum log volume) PLUS memory
// disaggregation — an elastic, shared remote buffer pool that all compute
// nodes use. Pages in the shared pool are always current, so secondary
// nodes read fresh data without log replay, resizing the buffer is a
// metadata operation, and failover promotes a secondary without cache
// warm-up. Local caches are kept coherent with page-LSN validation (one
// 8-byte one-sided read) instead of invalidation broadcasts.
package serverless

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/buffer"
	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/rdma"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/storagenode"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// Engine is the PolarDB Serverless-style engine: one primary (writer) and
// any number of secondaries sharing the remote buffer pool.
type Engine struct {
	cfg    *sim.Config
	layout heap.Layout
	Volume *storagenode.Volume
	// Shared is the disaggregated shared buffer pool.
	Shared  *buffer.RemotePool
	MemNode *memnode.Pool

	log   *wal.Log
	locks *txn.LockTable
	stats engine.Stats

	// nodes[0] is the primary; others are secondaries. Each node has a
	// small local cache plus a QP for validation reads.
	nodes   []*computeNode
	primary atomic.Int32

	// dir is the memory-node page directory (ModeBump: local caches are
	// kept coherent by page-LSN validation, not invalidation broadcasts).
	// It replaces the old hand-rolled pageLSN map; the shared pool and
	// every node cache validate their entries against it.
	dir     *coherence.Directory
	stampOf buffer.StampFunc

	// ckpt materializes the durable prefix on the volume replicas and
	// truncates the compute-side log below the published horizon.
	ckpt *checkpoint.Coordinator

	mu         sync.Mutex
	durableLSN wal.LSN
	nextTx     atomic.Uint64
}

type computeNode struct {
	cache   *buffer.Pool
	qp      *rdma.QP
	crashed atomic.Bool
}

// New creates the engine with `nodes` compute nodes (>=1), a shared pool
// of sharedPages frames, and per-node caches of localPages frames.
func New(cfg *sim.Config, layout heap.Layout, nodes, localPages, sharedPages int) *Engine {
	if nodes < 1 {
		nodes = 1
	}
	mn := memnode.New(cfg, "shared-buf", sharedPages*layout.PageSize+1024)
	e := &Engine{
		cfg:     cfg,
		layout:  layout,
		Volume:  storagenode.NewAuroraVolume(cfg, layout),
		MemNode: mn,
		log:   wal.NewLog(),
		locks: txn.NewLockTable(),
	}
	e.dir = coherence.NewDirectory(cfg, "serverless.coherence", coherence.ModeBump)
	e.dir.OnInvalidate = func(n int) { e.stats.Invalidations.Add(int64(n)) }
	e.dir.OnStale = func() { e.stats.StaleHits.Add(1) }
	e.stampOf = func(d []byte) uint64 { return page.Wrap(d).LSN() }
	base, err := mn.Alloc(uint64(sharedPages * layout.PageSize))
	if err != nil {
		panic("serverless: shared pool sizing bug: " + err.Error())
	}
	e.Shared = buffer.NewRemotePool(cfg, mn.Node(), nil, base, sharedPages, layout.PageSize)
	e.Shared.SetCoherence(e.dir.Register("shared", e.Shared), e.stampOf)
	for i := 0; i < nodes; i++ {
		n := &computeNode{qp: mn.Connect(nil)}
		n.cache = buffer.NewPool(cfg, localPages, nil, nil)
		n.cache.SetCoherence(e.dir.Register(fmt.Sprintf("node%d", i), n.cache), e.stampOf)
		e.nodes = append(e.nodes, n)
	}
	e.ckpt = checkpoint.New(cfg, "ckpt.serverless")
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "polardb-serverless" }

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return &e.stats }

// directoryLSN returns the current LSN of a page in the shared directory,
// charging the validation read.
func (e *Engine) directoryLSN(c *sim.Clock, n *computeNode, id page.ID) wal.LSN {
	// One 8-byte one-sided read against the memory node.
	var buf [8]byte
	n.qp.Read(c, 0, buf[:])
	return wal.LSN(e.dir.Version(id))
}

// getPage returns a current page image for the node: local cache if fresh,
// else shared pool, else storage volume.
func (e *Engine) getPage(c *sim.Clock, n *computeNode, id page.ID) ([]byte, error) {
	want := e.directoryLSN(c, n, id)
	// Peek only serves a frame whose stamp is current in the directory —
	// it replaces the old manual page-LSN check + Invalidate (which
	// miscounted a stale frame as a hit before dropping it).
	if data, ok := n.cache.Peek(c, id); ok {
		e.stats.CacheHits.Add(1)
		return data, nil
	}
	e.stats.CacheMisses.Add(1)
	buf := make([]byte, e.layout.PageSize)
	ok, err := e.Shared.Get(c, id, buf)
	if err != nil {
		return nil, err
	}
	if ok {
		e.stats.NetBytes.Add(int64(len(buf)))
		e.stats.NetMsgs.Add(1)
		n.cache.Install(c, id, append([]byte(nil), buf...), false)
		return buf, nil
	}
	// Shared-pool miss: fetch from storage, populate the shared pool.
	e.mu.Lock()
	min := e.durableLSN
	e.mu.Unlock()
	data, err := e.Volume.ReadPage(c, id, minForPage(min, want))
	if err != nil {
		// Injected drops can leave the same log hole on every replica;
		// heal from the authoritative log and retry once.
		e.Volume.Heal(sim.NewClock(), e.log)
		data, err = e.Volume.ReadPage(c, id, minForPage(min, want))
	}
	if err != nil {
		return nil, err
	}
	e.stats.StorageOps.Add(1)
	e.stats.NetBytes.Add(int64(len(data)))
	e.stats.NetMsgs.Add(1)
	if err := e.Shared.Put(c, id, data); err != nil {
		return nil, err
	}
	n.cache.Install(c, id, append([]byte(nil), data...), false)
	return data, nil
}

// minForPage: the storage read must cover the page's directory LSN (it may
// trail the global durable LSN).
func minForPage(durable, want wal.LSN) wal.LSN {
	if want < durable {
		return want
	}
	return durable
}

func (e *Engine) readKeyOn(c *sim.Clock, n *computeNode) func(key uint64) ([]byte, error) {
	return func(key uint64) ([]byte, error) {
		data, err := e.getPage(c, n, e.layout.PageOf(key))
		if err != nil {
			return nil, err
		}
		return e.layout.ReadValue(data, key)
	}
}

// Execute implements engine.Engine: runs on the primary.
func (e *Engine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	n := e.nodes[e.primary.Load()]
	if n.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKeyOn(c, n))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()
	// Durability: log to the storage volume (inherited from PolarDB/
	// Aurora lineage).
	var recs []wal.Record
	logBytes := 0
	var lastLSN wal.LSN
	pageStamp := make(map[page.ID]uint64)
	for _, k := range keys {
		id := e.layout.PageOf(k)
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, PageID: uint64(id), Key: k, After: writes[k]}
		rec.LSN = e.log.Append(rec)
		lastLSN = rec.LSN
		logBytes += rec.EncodedSize()
		recs = append(recs, rec)
		if uint64(rec.LSN) > pageStamp[id] {
			pageStamp[id] = uint64(rec.LSN)
		}
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	commit.LSN = e.log.Append(commit)
	lastLSN = commit.LSN
	logBytes += commit.EncodedSize()
	recs = append(recs, commit)
	if err := e.Volume.AppendLog(c, recs); err != nil {
		e.stats.Aborts.Add(1)
		return engine.Unavail(err)
	}
	// Durable from here on: every later failure (page latch conflict,
	// shared-pool fault) aborts the acknowledgement, not the log record —
	// the stamp marks the attempt as indeterminate rather than aborted.
	st.StampCommit(uint64(commit.LSN))
	e.stats.LogBytes.Add(int64(logBytes))
	e.stats.NetBytes.Add(int64(logBytes))
	e.stats.NetMsgs.Add(1)

	// Freshness: write the updated pages into the SHARED pool so every
	// node sees current data without replay. The read-modify-write of
	// each page happens under a page latch (PolarDB Serverless keeps
	// page-level physical latches on the memory node) so concurrent
	// committers to one page cannot clobber each other.
	pageIDs := make([]page.ID, 0, len(keys))
	seen := map[page.ID]bool{}
	for _, k := range keys {
		if id := e.layout.PageOf(k); !seen[id] {
			seen[id] = true
			pageIDs = append(pageIDs, id)
		}
	}
	sort.Slice(pageIDs, func(i, j int) bool { return pageIDs[i] < pageIDs[j] })
	latched := 0
	for _, id := range pageIDs {
		if err := e.locks.Acquire(c, txID, pageLatchKey(id), txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range pageIDs[:latched] {
				e.locks.Unlock(txID, pageLatchKey(h), txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		latched++
	}
	defer func() {
		for _, id := range pageIDs {
			e.locks.Unlock(txID, pageLatchKey(id), txn.Exclusive)
		}
	}()
	for _, id := range pageIDs {
		data, err := e.getPage(c, n, id)
		if err != nil {
			// The volume append is durable but the shared pool never saw
			// the update: the page LSN directory stays put, so readers
			// keep a consistent pre-update view. Surface the failure as
			// an (unacknowledged) abort.
			e.stats.Aborts.Add(1)
			return err
		}
		for _, k := range keys {
			if e.layout.PageOf(k) != id {
				continue
			}
			if err := e.layout.WriteValue(data, k, writes[k], uint64(lastLSN)); err != nil {
				e.stats.Aborts.Add(1)
				return err
			}
		}
		if err := e.Shared.Put(c, id, data); err != nil {
			e.stats.Aborts.Add(1)
			return err
		}
		e.stats.NetBytes.Add(int64(len(data)))
		e.stats.NetMsgs.Add(1)
		n.cache.Install(c, id, data, false)
		// Publish per page, as soon as the shared pool holds the update:
		// an abort later in the loop must not bump versions for pages the
		// shared pool never saw (readers keep a consistent pre-update
		// view, exactly as the old per-page pageLSN bump behaved). The
		// writer's own copies carry the commit LSN and stay fresh; every
		// other node's cached copy goes stale and revalidates.
		e.dir.Publish(c, []coherence.PageStamp{{ID: id, Stamp: pageStamp[id]}}, nil)
	}
	e.mu.Lock()
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	e.mu.Unlock()
	e.stats.Commits.Add(1)
	return nil
}

// pageLatchKey maps a page ID into a lock-table namespace disjoint from
// key locks.
func pageLatchKey(id page.ID) uint64 { return 1<<63 | uint64(id) }

// ReadReplica implements engine.Reader: read-only transaction on a
// secondary — always fresh, no replay.
func (e *Engine) ReadReplica(c *sim.Clock, idx int, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	n := e.nodes[idx]
	if n.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	st := engine.NewStagedTx(e.readKeyOn(c, n))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	if !st.Empty() {
		e.stats.Aborts.Add(1)
		return engine.ErrReadOnly
	}
	e.stats.Commits.Add(1)
	return nil
}

// Crash implements engine.Recoverer: the primary dies (its local cache is
// lost; the shared pool survives — memory disaggregation breaks fate
// sharing).
func (e *Engine) Crash() {
	n := e.nodes[e.primary.Load()]
	n.crashed.Store(true)
	n.cache.InvalidateAll()
}

// Recover implements engine.Recoverer: failover — promote the next healthy
// node to primary. No cache warm-up (the working set is in the shared
// pool) and no log replay (pages there are current): one directory round
// trip plus a quorum LSN poll.
func (e *Engine) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	cur := e.primary.Load()
	next := -1
	for i := range e.nodes {
		if int32(i) != cur && !e.nodes[i].crashed.Load() {
			next = i
			break
		}
	}
	if next == -1 {
		// Restart the crashed node itself.
		e.nodes[cur].crashed.Store(false)
		next = int(cur)
	}
	lsn, err := e.Volume.FindHighLSN(c)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	if lsn > e.durableLSN {
		e.durableLSN = lsn
	}
	e.mu.Unlock()
	// One control-plane RPC to take ownership of the shared pool.
	c.Advance(e.cfg.RDMARPC.Cost(64))
	e.primary.Store(int32(next))
	return c.Now() - start, nil
}

// Checkpoint implements engine.Checkpointer. The shared memory pool is
// volatile — it never counts as checkpoint state. Like Aurora, the
// durable flush is storage-side: the volume replicas materialize the
// prefix at or below the durable LSN and adopt the horizon; only then
// does the compute-side log drop its tail below it.
func (e *Engine) Checkpoint(c *sim.Clock) error {
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: func() wal.LSN {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.durableLSN
		},
		Flush: func(c *sim.Clock, h wal.LSN) error {
			shipped := e.Volume.Heal(c, e.log)
			e.stats.NetMsgs.Add(int64(shipped))
			advanced := e.Volume.AdvanceHorizon(c, h)
			if advanced < e.Volume.WriteQ {
				return storagenode.ErrNoQuorum
			}
			e.stats.NetMsgs.Add(int64(advanced))
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			e.log.TruncateBefore(h + 1)
			return nil
		},
	})
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *Engine) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// Nodes reports the number of compute nodes.
func (e *Engine) Nodes() int { return len(e.nodes) }

// AddNode scales out by attaching a fresh secondary: a metadata operation
// (no data movement — the point of shared storage + shared memory).
func (e *Engine) AddNode(c *sim.Clock, localPages int) int {
	n := &computeNode{qp: e.MemNode.Connect(nil)}
	n.cache = buffer.NewPool(e.cfg, localPages, nil, nil)
	c.Advance(e.cfg.RDMARPC.Cost(64))
	e.mu.Lock()
	e.nodes = append(e.nodes, n)
	idx := len(e.nodes) - 1
	e.mu.Unlock()
	n.cache.SetCoherence(e.dir.Register(fmt.Sprintf("node%d", idx), n.cache), e.stampOf)
	return idx
}
