package serverless

import (
	"encoding/binary"
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/sim"
)

func TestConformance(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return New(cfg, enginetest.Layout(t), 2, 16, 256)
	})
}

func TestSecondariesSeeFreshDataWithoutReplay(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 3, 16, 256)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	binary.LittleEndian.PutUint64(val, 777)
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(9, val) }); err != nil {
		t.Fatal(err)
	}
	// Both secondaries read the committed value immediately.
	for idx := 1; idx <= 2; idx++ {
		err := e.ReadReplica(c, idx, func(tx engine.Tx) error {
			v, err := tx.Read(9)
			if err != nil {
				return err
			}
			if binary.LittleEndian.Uint64(v) != 777 {
				t.Errorf("secondary %d read stale value %d", idx, binary.LittleEndian.Uint64(v))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestLocalCacheValidationCatchesStaleness(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 2, 16, 256)
	c := sim.NewClock()
	v1 := make([]byte, layout.ValSize)
	binary.LittleEndian.PutUint64(v1, 1)
	v2 := make([]byte, layout.ValSize)
	binary.LittleEndian.PutUint64(v2, 2)
	engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(3, v1) })
	// Secondary caches the page.
	e.ReadReplica(c, 1, func(tx engine.Tx) error { _, err := tx.Read(3); return err })
	// Primary overwrites.
	engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(3, v2) })
	// Secondary must observe the new value (LSN validation invalidates
	// its cached copy).
	err := e.ReadReplica(c, 1, func(tx engine.Tx) error {
		v, err := tx.Read(3)
		if err != nil {
			return err
		}
		if binary.LittleEndian.Uint64(v) != 2 {
			t.Errorf("stale cached read: %d", binary.LittleEndian.Uint64(v))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFailoverPromotesSecondaryFast(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 2, 16, 256)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 100; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	e.Crash()
	rc := sim.NewClock()
	d, err := e.Recover(rc)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1_000_000 {
		t.Fatalf("failover took %v — shared memory pool should make this near-instant", d)
	}
	// The new primary serves immediately from the shared pool.
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
		v, err := tx.Read(50)
		if err != nil {
			return err
		}
		if len(v) != layout.ValSize {
			t.Error("value lost in failover")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAddNodeIsMetadataOnly(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 1, 16, 256)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 50; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	before := e.Stats().NetBytes.Load()
	rc := sim.NewClock()
	idx := e.AddNode(rc, 16)
	if rc.Now() > 100_000_000 {
		t.Fatalf("scale-out took %v", rc.Now())
	}
	if moved := e.Stats().NetBytes.Load() - before; moved != 0 {
		t.Fatalf("scale-out moved %d bytes", moved)
	}
	// New node reads immediately.
	if err := e.ReadReplica(c, idx, func(tx engine.Tx) error {
		_, err := tx.Read(10)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestChaosCrashRecovery(t *testing.T) {
	enginetest.RunChaos(t, func(t *testing.T) engine.Engine {
		return New(sim.DefaultConfig(), enginetest.Layout(t), 2, 16, 256)
	})
}
