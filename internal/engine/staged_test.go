package engine

import (
	"bytes"
	"errors"
	"testing"
)

func TestStagedTxReadYourWrites(t *testing.T) {
	backing := map[uint64][]byte{7: []byte("base")}
	st := NewStagedTx(func(key uint64) ([]byte, error) {
		v, ok := backing[key]
		if !ok {
			return nil, errors.New("missing")
		}
		return v, nil
	})
	v, err := st.Read(7)
	if err != nil || string(v) != "base" {
		t.Fatalf("read-through: %q %v", v, err)
	}
	st.Write(7, []byte("staged"))
	v, _ = st.Read(7)
	if string(v) != "staged" {
		t.Fatalf("read-your-writes: %q", v)
	}
	// The backing store is untouched until commit.
	if string(backing[7]) != "base" {
		t.Fatal("staged write leaked to backing store")
	}
}

func TestStagedTxWriteSetSortedAndCopied(t *testing.T) {
	st := NewStagedTx(func(uint64) ([]byte, error) { return nil, nil })
	buf := []byte{1}
	st.Write(30, buf)
	st.Write(10, []byte{2})
	st.Write(20, []byte{3})
	buf[0] = 99 // caller mutates after staging
	keys, writes := st.WriteSet()
	if len(keys) != 3 || keys[0] != 10 || keys[1] != 20 || keys[2] != 30 {
		t.Fatalf("keys = %v", keys)
	}
	if writes[30][0] != 1 {
		t.Fatal("Write aliased the caller's buffer")
	}
	if st.Empty() {
		t.Fatal("Empty with staged writes")
	}
	if !NewStagedTx(nil).Empty() {
		t.Fatal("fresh tx not empty")
	}
}

// Regression: reads used to pass straight through to the engine read path
// every time, so a transaction re-reading a key while another worker
// committed in between observed two different values — a non-repeatable
// read the history checker flags. The first external read now pins the
// value for the transaction's lifetime.
func TestStagedTxRepeatableReads(t *testing.T) {
	calls := 0
	st := NewStagedTx(func(key uint64) ([]byte, error) {
		calls++
		return []byte{byte(calls)}, nil // a concurrent committer per read
	})
	v1, _ := st.Read(9)
	v2, _ := st.Read(9)
	if v1[0] != 1 || v2[0] != 1 {
		t.Fatalf("non-repeatable read: first %d then %d", v1[0], v2[0])
	}
	if calls != 1 {
		t.Fatalf("engine read path hit %d times for one key", calls)
	}
	// The pin must not leak between keys.
	v3, _ := st.Read(10)
	if v3[0] != 2 {
		t.Fatalf("second key read %d", v3[0])
	}
	// Reads return copies of the pin, not the pin itself.
	v2[0] = 99
	v4, _ := st.Read(9)
	if v4[0] != 1 {
		t.Fatal("pinned buffer aliased to caller")
	}
}

func TestStagedTxCommitStamp(t *testing.T) {
	st := NewStagedTx(nil)
	if _, ok := st.CommitStamp(); ok {
		t.Fatal("fresh tx claims a commit stamp")
	}
	st.StampCommit(41)
	stamp, ok := st.CommitStamp()
	if !ok || stamp != 41 {
		t.Fatalf("stamp = %d, %v", stamp, ok)
	}
	var _ Stamper = st // StagedTx satisfies the Run recording contract
}

func TestStagedTxReadReturnsCopy(t *testing.T) {
	st := NewStagedTx(nil)
	st.Write(1, []byte{5})
	v, _ := st.Read(1)
	v[0] = 77
	v2, _ := st.Read(1)
	if v2[0] != 5 {
		t.Fatal("Read leaked the staged buffer")
	}
	// Last write wins within the transaction.
	st.Write(1, []byte{6})
	v3, _ := st.Read(1)
	if v3[0] != 6 {
		t.Fatal("overwrite not visible")
	}
	if !bytes.Equal(v3, []byte{6}) {
		t.Fatal("bad value")
	}
}
