package engine

import (
	"bytes"
	"errors"
	"testing"
)

func TestStagedTxReadYourWrites(t *testing.T) {
	backing := map[uint64][]byte{7: []byte("base")}
	st := NewStagedTx(func(key uint64) ([]byte, error) {
		v, ok := backing[key]
		if !ok {
			return nil, errors.New("missing")
		}
		return v, nil
	})
	v, err := st.Read(7)
	if err != nil || string(v) != "base" {
		t.Fatalf("read-through: %q %v", v, err)
	}
	st.Write(7, []byte("staged"))
	v, _ = st.Read(7)
	if string(v) != "staged" {
		t.Fatalf("read-your-writes: %q", v)
	}
	// The backing store is untouched until commit.
	if string(backing[7]) != "base" {
		t.Fatal("staged write leaked to backing store")
	}
}

func TestStagedTxWriteSetSortedAndCopied(t *testing.T) {
	st := NewStagedTx(func(uint64) ([]byte, error) { return nil, nil })
	buf := []byte{1}
	st.Write(30, buf)
	st.Write(10, []byte{2})
	st.Write(20, []byte{3})
	buf[0] = 99 // caller mutates after staging
	keys, writes := st.WriteSet()
	if len(keys) != 3 || keys[0] != 10 || keys[1] != 20 || keys[2] != 30 {
		t.Fatalf("keys = %v", keys)
	}
	if writes[30][0] != 1 {
		t.Fatal("Write aliased the caller's buffer")
	}
	if st.Empty() {
		t.Fatal("Empty with staged writes")
	}
	if !NewStagedTx(nil).Empty() {
		t.Fatal("fresh tx not empty")
	}
}

func TestStagedTxReadReturnsCopy(t *testing.T) {
	st := NewStagedTx(nil)
	st.Write(1, []byte{5})
	v, _ := st.Read(1)
	v[0] = 77
	v2, _ := st.Read(1)
	if v2[0] != 5 {
		t.Fatal("Read leaked the staged buffer")
	}
	// Last write wins within the transaction.
	st.Write(1, []byte{6})
	v3, _ := st.Read(1)
	if v3[0] != 6 {
		t.Fatal("overwrite not visible")
	}
	if !bytes.Equal(v3, []byte{6}) {
		t.Fatal("bad value")
	}
}
