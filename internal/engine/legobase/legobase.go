// Package legobase implements the LegoBase architecture of §3.1: a
// cloud-native engine for memory disaggregation with (1) two-level cache
// management — a small compute-local LRU in front of a large remote-memory
// LRU — and (2) a two-tier ARIES protocol that checkpoints to remote
// memory frequently and to storage rarely, so a crashed compute node
// recovers from remote memory (fast) instead of replaying against storage
// (slow).
package legobase

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/buffer"
	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/device"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// Engine is the LegoBase-style engine.
type Engine struct {
	cfg    *sim.Config
	layout heap.Layout
	// Tiers is the two-level cache (local LRU + remote-memory LRU).
	Tiers   *buffer.TwoTier
	MemNode *memnode.Pool
	ssd     *device.SSD
	log     *wal.Log
	locks   *txn.LockTable
	stats   engine.Stats

	// dir version-stamps both cache tiers (ModeBump: lazy validation). A
	// remote copy that missed an update goes stale at the commit publish
	// and is dropped on its next validated read, falling through to the
	// log-replaying storage fetch.
	dir *coherence.Directory

	// CheckpointRemoteEvery / CheckpointStorageEvery control the two
	// ARIES tiers (commit counts; 0 disables).
	CheckpointRemoteEvery  int
	CheckpointStorageEvery int

	// ckpt drives the storage (slow) tier's log lifecycle: it owns the
	// truncation horizon, below which the on-disk images are the only
	// source of history.
	ckpt *checkpoint.Coordinator

	mu sync.Mutex
	// disk is durable page storage.
	disk map[page.ID][]byte
	// remoteCkptLSN / storageCkptLSN are the two checkpoint horizons.
	remoteCkptLSN  wal.LSN
	storageCkptLSN wal.LSN
	durableLSN     wal.LSN
	commitCount    int
	nextTx         atomic.Uint64
	crashed        atomic.Bool
}

// New creates the engine: a local cache of localPages frames backed by a
// remote pool of remotePages frames backed by SSD storage.
func New(cfg *sim.Config, layout heap.Layout, localPages, remotePages int) *Engine {
	mn := memnode.New(cfg, "lego-mem", remotePages*layout.PageSize+1024)
	e := &Engine{
		cfg:                    cfg,
		layout:                 layout,
		MemNode:                mn,
		ssd:                    device.NewSSD(cfg, 32),
		log:                    wal.NewLog(),
		locks:                  txn.NewLockTable(),
		disk:                   make(map[page.ID][]byte),
		CheckpointRemoteEvery:  32,
		CheckpointStorageEvery: 512,
	}
	base, err := mn.Alloc(uint64(remotePages * layout.PageSize))
	if err != nil {
		panic("legobase: remote pool sizing bug: " + err.Error())
	}
	remote := buffer.NewRemotePool(cfg, mn.Node(), nil, base, remotePages, layout.PageSize)
	e.Tiers = buffer.NewTwoTier(cfg, localPages, remote, e.fetchFromStorage)
	e.dir = coherence.NewDirectory(cfg, "legobase.coherence", coherence.ModeBump)
	e.dir.OnInvalidate = func(n int) { e.stats.Invalidations.Add(int64(n)) }
	e.dir.OnStale = func() { e.stats.StaleHits.Add(1) }
	e.Tiers.SetCoherence(e.dir, "legobase", func(d []byte) uint64 { return page.Wrap(d).LSN() })
	e.ckpt = checkpoint.New(cfg, "ckpt.legobase")
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "legobase" }

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return &e.stats }

func (e *Engine) fetchFromStorage(c *sim.Clock, id page.ID) ([]byte, error) {
	e.mu.Lock()
	data, ok := e.disk[id]
	e.mu.Unlock()
	var out []byte
	if ok {
		out = make([]byte, len(data))
		copy(out, data)
	} else {
		out = e.layout.FormatPage(id).Bytes()
	}
	// Storage is network-attached (TCP) + SSD.
	op := e.cfg.Begin(c, "tcp.rpc")
	c.Advance(e.cfg.TCP.Cost(len(out)))
	op.End(int64(len(out)))
	e.ssd.Read(c, len(out))
	e.stats.StorageOps.Add(1)
	e.stats.NetBytes.Add(int64(len(out)))
	e.stats.NetMsgs.Add(1)
	// Replay log tail newer than the page image.
	pg := page.Wrap(out)
	for _, r := range e.log.Since(wal.LSN(pg.LSN())) {
		if r.PageID == uint64(id) && r.Type == wal.TypeUpdate {
			e.layout.WriteValue(out, r.Key, r.After, uint64(r.LSN))
			c.Advance(e.cfg.CPU.Cost(len(r.After)))
		}
	}
	return out, nil
}

func (e *Engine) readKey(c *sim.Clock) func(key uint64) ([]byte, error) {
	return func(key uint64) ([]byte, error) {
		data, err := e.Tiers.Get(c, e.layout.PageOf(key))
		if err != nil {
			return nil, err
		}
		return e.layout.ReadValue(data, key)
	}
}

// Execute implements engine.Engine.
func (e *Engine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if e.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKey(c))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()
	logBytes := 0
	var lastLSN wal.LSN
	pageStamp := make(map[page.ID]uint64)
	for _, k := range keys {
		id := e.layout.PageOf(k)
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, PageID: uint64(id), Key: k, After: writes[k]}
		rec.LSN = e.log.Append(rec)
		lastLSN = rec.LSN
		logBytes += rec.EncodedSize()
		if uint64(rec.LSN) > pageStamp[id] {
			pageStamp[id] = uint64(rec.LSN)
		}
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	commit.LSN = e.log.Append(commit)
	lastLSN = commit.LSN
	logBytes += commit.EncodedSize()
	// Durable log: network round trip + SSD append.
	op := e.cfg.Begin(c, "tcp.rpc")
	c.Advance(e.cfg.TCP.Cost(logBytes))
	op.End(int64(logBytes))
	e.ssd.Write(c, logBytes)
	// Durable from here on: a failed tier apply below surfaces an error,
	// but the stamped commit record already survives a crash.
	st.StampCommit(uint64(commit.LSN))
	e.stats.LogBytes.Add(int64(logBytes))
	e.stats.NetBytes.Add(int64(logBytes))
	e.stats.NetMsgs.Add(1)
	e.mu.Lock()
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	e.commitCount++
	doRemote := e.CheckpointRemoteEvery > 0 && e.commitCount%e.CheckpointRemoteEvery == 0
	doStorage := e.CheckpointStorageEvery > 0 && e.commitCount%e.CheckpointStorageEvery == 0
	e.mu.Unlock()
	for _, k := range keys {
		key := k
		if err := e.Tiers.Mutate(c, e.layout.PageOf(k), func(data []byte) error {
			return e.layout.WriteValue(data, key, writes[key], uint64(lastLSN))
		}); err != nil {
			// A failed tier apply (e.g. an injected fault on the remote
			// pull) leaves the commit durable in the log but unapplied to
			// the cache hierarchy; surface it as an (unacknowledged)
			// abort so the attempt lands in exactly one counter.
			e.stats.Aborts.Add(1)
			return err
		}
	}
	// Publish the commit stamps: the local tier's frames were re-stamped
	// by Mutate and stay fresh; any remote-tier copy that predates this
	// commit goes stale and is dropped on its next validated read.
	stamps := make([]coherence.PageStamp, 0, len(pageStamp))
	for id, st := range pageStamp {
		stamps = append(stamps, coherence.PageStamp{ID: id, Stamp: st})
	}
	e.dir.Publish(c, stamps, nil)
	if doRemote {
		e.CheckpointRemote(c)
	}
	if doStorage {
		e.CheckpointStorage(c)
	}
	e.stats.Commits.Add(1)
	return nil
}

// CheckpointRemote is the fast ARIES tier: the remote memory pool
// absorbs every commit at or below a horizon captured BEFORE the flush.
// The original version captured the horizon after — a commit that became
// durable during the flush (applied only to the soon-to-die local cache,
// or not applied at all) fell below the horizon without its pages in
// remote memory, and Recover's from-horizon replay skipped it. The
// capture-first ordering plus a log-tail redo closes both holes.
func (e *Engine) CheckpointRemote(c *sim.Clock) error {
	e.mu.Lock()
	target := e.durableLSN
	from := e.remoteCkptLSN
	e.mu.Unlock()
	// Redo the (from, target] tail through the tier hierarchy: Mutate's
	// page-LSN guard skips records already applied, and pulls any page the
	// caches dropped back from storage.
	recs, err := e.log.Replay(from)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if r.LSN > target || r.Type != wal.TypeUpdate {
			continue
		}
		rec := r
		if err := e.Tiers.Mutate(c, page.ID(rec.PageID), func(data []byte) error {
			if wal.LSN(page.Wrap(data).LSN()) >= rec.LSN {
				return nil
			}
			return e.layout.WriteValue(data, rec.Key, rec.After, uint64(rec.LSN))
		}); err != nil {
			return err
		}
	}
	for _, id := range e.Tiers.Local.DirtyIDs() {
		data, err := e.Tiers.Local.Get(c, id)
		if err != nil {
			return err
		}
		if err := e.Tiers.Remote.Put(c, id, data); err != nil {
			return err
		}
	}
	// The pages are now safe in remote memory; mark them clean locally
	// so they are not re-demoted.
	e.Tiers.Local.FlushAll(sim.NewClock())
	e.mu.Lock()
	if target > e.remoteCkptLSN {
		e.remoteCkptLSN = target
	}
	e.mu.Unlock()
	return nil
}

// CheckpointStorage is the slow ARIES tier and the engine's log
// lifecycle: on-disk page images absorb the retained tail at or below
// the coordinator's horizon, the horizon is published, and only then is
// the log truncated below it. The original version advanced the horizon
// without ever truncating (unbounded log) and trusted the remote tier's
// current contents (whose LRU may have evicted below-horizon pages).
func (e *Engine) CheckpointStorage(c *sim.Clock) error {
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: func() wal.LSN {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.durableLSN
		},
		Flush: func(c *sim.Clock, h wal.LSN) error {
			// Redo the retained tail straight into the disk images — the
			// disk copy must cover <= h independent of what either cache
			// tier currently holds.
			recs, err := e.log.Replay(e.ckpt.Horizon())
			if err != nil {
				return err
			}
			dirty := map[page.ID]bool{}
			e.mu.Lock()
			for _, r := range recs {
				if r.LSN > h || r.Type != wal.TypeUpdate {
					continue
				}
				id := page.ID(r.PageID)
				img, ok := e.disk[id]
				if !ok {
					img = e.layout.FormatPage(id).Bytes()
					e.disk[id] = img
				}
				if uint64(r.LSN) <= page.Wrap(img).LSN() {
					continue
				}
				if err := e.layout.WriteValue(img, r.Key, r.After, uint64(r.LSN)); err != nil {
					e.mu.Unlock()
					return err
				}
				dirty[id] = true
			}
			e.mu.Unlock()
			for range dirty {
				op := e.cfg.Begin(c, "tcp.rpc")
				c.Advance(e.cfg.TCP.Cost(e.layout.PageSize))
				op.End(int64(e.layout.PageSize))
				e.ssd.Write(c, e.layout.PageSize)
				e.stats.PageBytes.Add(int64(e.layout.PageSize))
			}
			e.mu.Lock()
			if h > e.storageCkptLSN {
				e.storageCkptLSN = h
			}
			// The fast tier's replay start must never fall below the
			// truncation floor.
			if h > e.remoteCkptLSN {
				e.remoteCkptLSN = h
			}
			e.mu.Unlock()
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			e.log.TruncateBefore(h + 1)
			e.ssd.Write(c, 24) // checkpoint master record
			return nil
		},
	})
}

// Checkpoint implements engine.Checkpointer: one full round of both
// ARIES tiers, ending in log truncation.
func (e *Engine) Checkpoint(c *sim.Clock) error {
	if err := e.CheckpointRemote(c); err != nil {
		return err
	}
	return e.CheckpointStorage(c)
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *Engine) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// Crash implements engine.Recoverer: the compute node dies; local cache is
// lost, remote memory and storage survive.
func (e *Engine) Crash() {
	e.crashed.Store(true)
	e.Tiers.Local.InvalidateAll()
}

// Recover implements engine.Recoverer: LegoBase recovery — repopulate from
// REMOTE MEMORY (RDMA reads of the checkpointed pages) and replay only the
// log tail since the remote checkpoint.
func (e *Engine) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	e.mu.Lock()
	from := e.remoteCkptLSN
	e.mu.Unlock()
	// Replay the short tail; pages come from remote memory on demand
	// (charged as RDMA reads inside Tiers.Get). Replay (not Since) so a
	// horizon below the truncation floor fails loudly instead of redoing
	// a partial prefix as if it were complete.
	recs, err := e.log.Replay(from)
	if err != nil {
		return 0, err
	}
	for _, r := range recs {
		if r.Type != wal.TypeUpdate {
			continue
		}
		rec := r
		if err := e.Tiers.Mutate(c, page.ID(r.PageID), func(data []byte) error {
			if wal.LSN(page.Wrap(data).LSN()) >= rec.LSN {
				return nil
			}
			return e.layout.WriteValue(data, rec.Key, rec.After, uint64(rec.LSN))
		}); err != nil {
			return 0, err
		}
	}
	e.crashed.Store(false)
	return c.Now() - start, nil
}

// RecoverFromStorageOnly is the ablation baseline for E9: ignore remote
// memory and run classic ARIES from the storage checkpoint.
func (e *Engine) RecoverFromStorageOnly(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	e.mu.Lock()
	from := e.storageCkptLSN
	e.mu.Unlock()
	recs, err := e.log.Replay(from)
	if err != nil {
		return 0, err
	}
	logBytes := 0
	for i := range recs {
		logBytes += recs[i].EncodedSize()
	}
	op := e.cfg.Begin(c, "tcp.rpc")
	c.Advance(e.cfg.TCP.Cost(logBytes))
	op.End(int64(logBytes))
	e.ssd.Read(c, logBytes)
	touched := map[page.ID]bool{}
	for _, r := range recs {
		if r.Type != wal.TypeUpdate {
			continue
		}
		id := page.ID(r.PageID)
		if !touched[id] {
			touched[id] = true
			// Page fetched from storage, not remote memory.
			if _, err := e.fetchFromStorage(c, id); err != nil {
				return 0, err
			}
		}
		c.Advance(e.cfg.CPU.Cost(len(r.After)))
	}
	e.crashed.Store(false)
	return c.Now() - start, nil
}
