package legobase

import (
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/sim"
)

func TestConformance(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return New(cfg, enginetest.Layout(t), 8, 256)
	})
}

func TestTwoTierCacheAbsorbsWorkingSet(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 4, 256)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	// Working set of ~40 pages: far beyond local (4) but within remote.
	keys := 40 * uint64(layout.PerPage)
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < keys; i += 7 {
			engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
				_, err := tx.Read(i)
				if err != nil {
					return err
				}
				return tx.Write(i, val)
			})
		}
	}
	l, r, s := e.Tiers.TierStats()
	if r == 0 {
		t.Fatal("remote tier never hit")
	}
	if hr := e.Tiers.CombinedHitRatio(); hr < 0.5 {
		t.Fatalf("combined hit ratio %.2f (l=%d r=%d s=%d)", hr, l, r, s)
	}
}

func TestRecoveryFromRemoteMemoryBeatsStorage(t *testing.T) {
	// E9's second claim: two-tier ARIES recovery from remote memory is
	// much faster than classic ARIES from storage.
	layout := enginetest.Layout(t)
	build := func() *Engine {
		e := New(sim.DefaultConfig(), layout, 8, 256)
		e.CheckpointRemoteEvery = 16
		e.CheckpointStorageEvery = 200
		c := sim.NewClock()
		val := make([]byte, layout.ValSize)
		for i := uint64(0); i < 400; i++ {
			engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i%100, val) })
		}
		e.Crash()
		return e
	}
	fast := build()
	dFast, err := fast.Recover(sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	slow := build()
	dSlow, err := slow.RecoverFromStorageOnly(sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !(dFast < dSlow/2) {
		t.Fatalf("remote-memory recovery (%v) should be ≫ faster than storage ARIES (%v)", dFast, dSlow)
	}
}

func TestDataSurvivesCrashViaRemoteCheckpoint(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 4, 128)
	e.CheckpointRemoteEvery = 8
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	val[0] = 0xEE
	for i := uint64(0); i < 64; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	e.Crash()
	if _, err := e.Recover(sim.NewClock()); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i += 9 {
		key := i
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
			v, err := tx.Read(key)
			if err != nil {
				return err
			}
			if v[0] != 0xEE {
				t.Errorf("key %d lost: %v", key, v[0])
			}
			return nil
		})
	}
}

func TestChaosCrashRecovery(t *testing.T) {
	enginetest.RunChaos(t, func(t *testing.T) engine.Engine {
		return New(sim.DefaultConfig(), enginetest.Layout(t), 8, 256)
	})
}
