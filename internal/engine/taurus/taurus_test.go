package taurus

import (
	"testing"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/sim"
)

func TestConformance(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return New(cfg, enginetest.Layout(t), 64, 3)
	})
}

func TestPageStoresLagAndConverge(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, 3)
	e.GossipEvery = 0 // manual gossip
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 30; i++ {
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) }); err != nil {
			t.Fatal(err)
		}
	}
	if e.MaxPageLag() == 0 {
		t.Fatal("1-of-N page writes should leave stores at different LSNs")
	}
	bg := sim.NewClock()
	for i := 0; i < 4 && e.MaxPageLag() > 0; i++ {
		e.PageStores.GossipRound(bg)
	}
	if e.MaxPageLag() != 0 {
		t.Fatalf("gossip did not converge: lag %d", e.MaxPageLag())
	}
}

func TestStaleReadTriggersGossipAndSucceeds(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 4, 3)
	e.GossipEvery = 0
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 20; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	e.Pool().InvalidateAll()
	// The read needs the newest LSN; no single store has the full
	// prefix, so the engine gossips on demand and then serves it.
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
		v, err := tx.Read(19)
		if err != nil {
			return err
		}
		if len(v) != layout.ValSize {
			t.Error("bad value")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLogStoreQuorumFailure(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, 3)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	e.LogStores.Stores[0].Fail()
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(1, val) }); err != nil {
		t.Fatalf("2/3 log stores should suffice: %v", err)
	}
	e.LogStores.Stores[1].Fail()
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(2, val) }); err != engine.ErrUnavailable {
		t.Fatalf("1/3 log stores: %v", err)
	}
}

func TestChaosCrashRecovery(t *testing.T) {
	enginetest.RunChaos(t, func(t *testing.T) engine.Engine {
		return New(sim.DefaultConfig(), enginetest.Layout(t), 64, 3)
	})
}
