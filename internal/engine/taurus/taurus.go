// Package taurus implements the Taurus architecture of §2.1: logs and
// pages get different replication and consistency treatments because their
// access patterns differ. Log batches are synchronously replicated to a
// small group of log stores (durability), while each page-store write goes
// to only ONE page store — the writer stays frugal — and the page stores
// converge through gossip. Readers route to a page store fresh enough for
// their LSN.
package taurus

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/buffer"
	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/storagenode"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// Engine is the Taurus-style engine.
type Engine struct {
	cfg    *sim.Config
	layout heap.Layout
	// LogStores is the synchronous durability group (3 stores, quorum 2).
	LogStores *storagenode.LogStoreGroup
	// PageStores converge via gossip.
	PageStores *storagenode.PageStoreGroup

	log   *wal.Log
	locks *txn.LockTable
	stats engine.Stats
	pool  *buffer.Pool

	// dir version-stamps the pool's frames at commit publishes; a frame
	// whose local apply failed keeps its old stamp and goes stale, so the
	// next reader refetches instead of seeing the pre-commit image.
	dir   *coherence.Directory
	poolH *coherence.Handle

	// gc, when non-nil, combines concurrent quorum log appends into
	// shared group flushes (engine.GroupCommitter). The frugal per-commit
	// page-store write stays per transaction.
	gc *sim.Batcher[[]wal.Record, wal.LSN]

	// GossipEvery runs one anti-entropy round every N commits.
	GossipEvery int

	// ckpt converges the page stores on the durable prefix, publishes the
	// horizon, and truncates both log tiers below it.
	ckpt *checkpoint.Coordinator

	mu          sync.Mutex
	durableLSN  wal.LSN
	commitCount int
	nextTx      atomic.Uint64
	crashed     atomic.Bool
}

// New creates the engine with nPageStores page stores.
func New(cfg *sim.Config, layout heap.Layout, poolPages, nPageStores int) *Engine {
	log := wal.NewLog()
	e := &Engine{
		cfg:         cfg,
		layout:      layout,
		LogStores:   storagenode.NewLogStoreGroup(cfg, 3, 2, storagenode.MediumSSD),
		PageStores:  storagenode.NewPageStoreGroup(cfg, nPageStores, layout, log),
		log:         log,
		locks:       txn.NewLockTable(),
		GossipEvery: 32,
	}
	e.pool = buffer.NewPool(cfg, poolPages, e.fetchPage, nil)
	e.dir = coherence.NewDirectory(cfg, "taurus.coherence", coherence.ModeBump)
	e.dir.OnInvalidate = func(n int) { e.stats.Invalidations.Add(int64(n)) }
	e.dir.OnStale = func() { e.stats.StaleHits.Add(1) }
	e.poolH = e.dir.Register("pool", e.pool)
	e.pool.SetCoherence(e.poolH, func(d []byte) uint64 { return page.Wrap(d).LSN() })
	e.ckpt = checkpoint.New(cfg, "ckpt.taurus")
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "taurus" }

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return &e.stats }

// EnableGroupCommit implements engine.GroupCommitter: commits share
// quorum log-store flushes of up to maxItems transactions or the virtual
// window.
func (e *Engine) EnableGroupCommit(maxItems int, window time.Duration) {
	e.dir.EnableBatching(maxItems, window)
	if maxItems <= 1 {
		e.gc = nil
		return
	}
	e.gc = sim.NewBatcher(e.cfg, "taurus.groupcommit",
		sim.BatchPolicy{MaxItems: maxItems, Window: window, OnFlush: e.noteFlush},
		e.flushGroup)
}

func (e *Engine) noteFlush(n int, reason sim.FlushReason) {
	e.stats.GroupFlushes.Add(1)
	if reason == sim.FlushSize {
		e.stats.FlushOnSize.Add(1)
	} else {
		e.stats.FlushOnTimeout.Add(1)
	}
}

// flushGroup quorum-appends every rider's records as one flush in LSN
// order; all riders wake with the group's durable high-water LSN.
func (e *Engine) flushGroup(c *sim.Clock, groups [][]wal.Record, out []wal.LSN) error {
	var recs []wal.Record
	for _, g := range groups {
		recs = append(recs, g...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	if err := e.LogStores.Append(c, recs); err != nil {
		return err
	}
	e.stats.NetMsgs.Add(int64(len(e.LogStores.Stores)))
	high := recs[len(recs)-1].LSN
	e.mu.Lock()
	if high > e.durableLSN {
		e.durableLSN = high
	}
	e.mu.Unlock()
	for i := range out {
		out[i] = high
	}
	return nil
}

// fetchPage reads from a fresh-enough page store; if gossip lags it runs a
// round on demand (reader-triggered catch-up).
func (e *Engine) fetchPage(c *sim.Clock, id page.ID) ([]byte, error) {
	e.mu.Lock()
	min := e.durableLSN
	e.mu.Unlock()
	for try := 0; try < 4; try++ {
		data, err := e.PageStores.ReadPage(c, id, min)
		if err == nil {
			e.stats.StorageOps.Add(1)
			e.stats.NetMsgs.Add(1)
			e.stats.NetBytes.Add(int64(len(data)))
			return data, nil
		}
		if err != storagenode.ErrStaleReplica {
			return nil, err
		}
		// No store fresh enough: trigger gossip (charged to the
		// waiting reader — staleness has a visible cost).
		e.PageStores.GossipRound(c)
	}
	return nil, storagenode.ErrStaleReplica
}

func (e *Engine) readKey(c *sim.Clock) func(key uint64) ([]byte, error) {
	return func(key uint64) ([]byte, error) {
		id := e.layout.PageOf(key)
		// Peek serves a validated hit atomically (the old Contains+Get
		// pair miscounted a stale frame as a hit).
		if data, ok := e.pool.Peek(c, id); ok {
			e.stats.CacheHits.Add(1)
			return e.layout.ReadValue(data, key)
		}
		e.stats.CacheMisses.Add(1)
		data, err := e.pool.Get(c, id)
		if err != nil {
			return nil, err
		}
		return e.layout.ReadValue(data, key)
	}
}

// Execute implements engine.Engine.
func (e *Engine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if e.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKey(c))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()
	var recs []wal.Record
	logBytes := 0
	var lastLSN wal.LSN
	pageStamp := make(map[page.ID]uint64)
	for _, k := range keys {
		id := e.layout.PageOf(k)
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, PageID: uint64(id), Key: k, After: writes[k]}
		rec.LSN = e.log.Append(rec)
		lastLSN = rec.LSN
		logBytes += rec.EncodedSize()
		recs = append(recs, rec)
		if uint64(rec.LSN) > pageStamp[id] {
			pageStamp[id] = uint64(rec.LSN)
		}
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	commit.LSN = e.log.Append(commit)
	lastLSN = commit.LSN
	logBytes += commit.EncodedSize()
	recs = append(recs, commit)

	// Durability: quorum append to the log stores.
	logCopies := int64(len(e.LogStores.Stores))
	if e.gc != nil {
		if _, err := e.gc.Submit(c, recs); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
		e.stats.GroupCommits.Add(1)
	} else {
		if err := e.LogStores.Append(c, recs); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
		e.stats.NetMsgs.Add(logCopies)
	}
	// The commit is durable once the log-store quorum has it; the page
	// distribution below can still fail, leaving the transaction durable
	// but unacknowledged — the stamp is what lets the history checker
	// classify that correctly.
	st.StampCommit(uint64(commit.LSN))
	// Frugal page distribution: the writer sends the records to exactly
	// one page store (Taurus's writer-load optimization), charged here.
	if err := e.PageStores.WriteToOne(c, recs); err != nil {
		e.stats.Aborts.Add(1)
		return engine.Unavail(err)
	}
	// Fan-out: all (3) log stores receive the batch, but only ONE page
	// store does — Taurus's frugality vs Aurora's 6-way fan-out.
	e.stats.LogBytes.Add(int64(logBytes))
	e.stats.NetBytes.Add(int64(logBytes) * (logCopies + 1))
	e.stats.NetMsgs.Add(1)

	e.mu.Lock()
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	e.commitCount++
	doGossip := e.GossipEvery > 0 && e.commitCount%e.GossipEvery == 0
	e.mu.Unlock()
	// Apply to cached pages, then publish the commit stamps. Mutate
	// re-stamps an applied frame from the mutated bytes so it stays fresh;
	// a failed apply (the commit is already quorum-durable) leaves the old
	// stamp and the publish stales the frame, so the next reader refetches
	// — replacing the old explicit Invalidate-on-error call.
	for _, k := range keys {
		key := k
		if e.pool.Contains(e.layout.PageOf(k)) {
			_ = e.pool.Mutate(c, e.layout.PageOf(k), func(data []byte) error {
				return e.layout.WriteValue(data, key, writes[key], uint64(lastLSN))
			})
		}
	}
	stamps := make([]coherence.PageStamp, 0, len(pageStamp))
	for id, st := range pageStamp {
		stamps = append(stamps, coherence.PageStamp{ID: id, Stamp: st})
	}
	e.dir.Publish(c, stamps, e.poolH)
	if doGossip {
		// Background anti-entropy (not charged to the writer).
		e.PageStores.GossipRound(sim.NewClock())
	}
	e.stats.Commits.Add(1)
	return nil
}

// Crash implements engine.Recoverer.
func (e *Engine) Crash() {
	e.crashed.Store(true)
	e.pool.InvalidateAll()
}

// Recover implements engine.Recoverer: learn the quorum-durable LSN from
// the log stores and resume; page stores catch up by gossip.
func (e *Engine) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	e.mu.Lock()
	e.durableLSN = e.LogStores.HighLSN()
	e.mu.Unlock()
	op := e.cfg.Begin(c, "tcp.rpc")
	c.Advance(e.cfg.TCP.Cost(64))
	op.End(64)
	e.crashed.Store(false)
	return c.Now() - start, nil
}

// Checkpoint implements engine.Checkpointer. Taurus checkpoints both
// tiers: the page stores converge on the durable prefix (gossip, charged
// to the checkpoint's clock — anti-entropy here is checkpoint work, not
// a reader's problem) and adopt the horizon; then the quorum log stores
// and the authoritative log drop everything below it. The log-store
// truncation is a fabric RPC and can fail under injected faults — the
// coordinator surfaces the error after publishing the horizon, and the
// next round retries the (idempotent) truncation.
func (e *Engine) Checkpoint(c *sim.Clock) error {
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: func() wal.LSN {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.durableLSN
		},
		Flush: func(c *sim.Clock, h wal.LSN) error {
			shipped := e.PageStores.GossipRound(c)
			e.stats.NetMsgs.Add(int64(shipped))
			if e.PageStores.AdvanceHorizon(c, h) == 0 {
				return storagenode.ErrNoQuorum
			}
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			if err := e.LogStores.TruncateBefore(c, h+1); err != nil {
				return err
			}
			e.log.TruncateBefore(h + 1)
			return nil
		},
	})
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *Engine) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// MaxPageLag exposes the page-store staleness metric.
func (e *Engine) MaxPageLag() wal.LSN { return e.PageStores.MaxLag() }

// Pool exposes the compute cache.
func (e *Engine) Pool() *buffer.Pool { return e.pool }
