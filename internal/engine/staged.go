package engine

import "sort"

// StagedTx is the transaction staging helper shared by the engines: reads
// go through the engine's read path (checking the transaction's own write
// buffer first), writes are buffered until commit. Engines call Writes at
// commit to obtain the write set in deterministic (sorted) key order —
// which also makes commit-time lock acquisition deadlock-free.
//
// The engines use redo-only logging with a no-steal buffer policy: dirty
// pages never reach storage before commit, so undo images are unnecessary.
//
// External reads are pinned: the first read of a key caches its value,
// and re-reads return the pinned copy. Reads take no locks, so without
// the pin a transaction re-reading a key could observe another worker's
// concurrent commit mid-transaction (a non-repeatable read the history
// checker flags); with it, every transaction sees a stable read set.
type StagedTx struct {
	read   func(key uint64) ([]byte, error)
	writes map[uint64][]byte
	cache  map[uint64][]byte
	stamp  uint64
}

// NewStagedTx wraps an engine read path.
func NewStagedTx(read func(key uint64) ([]byte, error)) *StagedTx {
	return &StagedTx{read: read, writes: make(map[uint64][]byte)}
}

// Read implements Tx: the transaction sees its own staged writes first,
// then its pinned read set, then the engine read path.
func (t *StagedTx) Read(key uint64) ([]byte, error) {
	if v, ok := t.writes[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	if v, ok := t.cache[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	v, err := t.read(key)
	if err != nil {
		return v, err
	}
	if t.cache == nil {
		t.cache = make(map[uint64][]byte)
	}
	pin := make([]byte, len(v))
	copy(pin, v)
	t.cache[key] = pin
	return v, nil
}

// Write implements Tx.
func (t *StagedTx) Write(key uint64, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	t.writes[key] = cp
	return nil
}

// WriteSet returns the staged writes in ascending key order.
func (t *StagedTx) WriteSet() ([]uint64, map[uint64][]byte) {
	keys := make([]uint64, 0, len(t.writes))
	for k := range t.writes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, t.writes
}

// Empty reports whether the transaction staged no writes.
func (t *StagedTx) Empty() bool { return len(t.writes) == 0 }

// StampCommit records the engine-assigned commit timestamp (commit-record
// LSN or commit sequence number). Engines call it at the durability point:
// once stamped, the transaction's effects may survive a crash even if the
// commit is never acknowledged, which is exactly the distinction the
// history checker needs between "definitely aborted" and "indeterminate".
func (t *StagedTx) StampCommit(stamp uint64) { t.stamp = stamp }

// CommitStamp reports the commit timestamp, if the transaction reached
// its engine's durability point. Implements the Stamper contract
// engine.Run uses for history recording.
func (t *StagedTx) CommitStamp() (uint64, bool) { return t.stamp, t.stamp != 0 }
