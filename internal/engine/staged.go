package engine

import "sort"

// StagedTx is the transaction staging helper shared by the engines: reads
// go through the engine's read path (checking the transaction's own write
// buffer first), writes are buffered until commit. Engines call Writes at
// commit to obtain the write set in deterministic (sorted) key order —
// which also makes commit-time lock acquisition deadlock-free.
//
// The engines use redo-only logging with a no-steal buffer policy: dirty
// pages never reach storage before commit, so undo images are unnecessary.
type StagedTx struct {
	read   func(key uint64) ([]byte, error)
	writes map[uint64][]byte
}

// NewStagedTx wraps an engine read path.
func NewStagedTx(read func(key uint64) ([]byte, error)) *StagedTx {
	return &StagedTx{read: read, writes: make(map[uint64][]byte)}
}

// Read implements Tx: the transaction sees its own staged writes.
func (t *StagedTx) Read(key uint64) ([]byte, error) {
	if v, ok := t.writes[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	return t.read(key)
}

// Write implements Tx.
func (t *StagedTx) Write(key uint64, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	t.writes[key] = cp
	return nil
}

// WriteSet returns the staged writes in ascending key order.
func (t *StagedTx) WriteSet() ([]uint64, map[uint64][]byte) {
	keys := make([]uint64, 0, len(t.writes))
	for k := range t.writes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, t.writes
}

// Empty reports whether the transaction staged no writes.
func (t *StagedTx) Empty() bool { return len(t.writes) == 0 }
