package engine

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

type flakyEngine struct {
	failures     int
	calls        int
	replicaCalls []int
	stats        Stats
}

func (f *flakyEngine) Name() string  { return "flaky" }
func (f *flakyEngine) Stats() *Stats { return &f.stats }

type nopTx struct{}

func (nopTx) Read(uint64) ([]byte, error) { return nil, nil }
func (nopTx) Write(uint64, []byte) error  { return nil }

func (f *flakyEngine) Execute(c *sim.Clock, fn func(tx Tx) error) error {
	f.calls++
	if f.failures > 0 {
		f.failures--
		return ErrConflict
	}
	if err := fn(nopTx{}); err != nil {
		return err
	}
	f.stats.Commits.Add(1)
	return nil
}

// flakyReader adds read replicas to flakyEngine.
type flakyReader struct{ flakyEngine }

func (f *flakyReader) ReadReplica(c *sim.Clock, idx int, fn func(tx Tx) error) error {
	f.replicaCalls = append(f.replicaCalls, idx)
	return fn(nopTx{})
}

func TestRunRetriesConflicts(t *testing.T) {
	e := &flakyEngine{failures: 2}
	err := Run(e, sim.NewClock(), RunOpts{Retries: 3}, func(tx Tx) error { return nil })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 3 {
		t.Fatalf("calls = %d, want 3", e.calls)
	}
}

func TestRunGivesUp(t *testing.T) {
	e := &flakyEngine{failures: 100}
	err := Run(e, sim.NewClock(), RunOpts{Retries: 2}, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunPassesThroughOtherErrors(t *testing.T) {
	e := &flakyEngine{}
	boom := errors.New("boom")
	err := Run(e, sim.NewClock(), RunOpts{Retries: 5}, func(tx Tx) error { return boom })
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on app error)", e.calls)
	}
}

func TestRunZeroOptsIsExecute(t *testing.T) {
	e := &flakyEngine{failures: 1}
	err := Run(e, sim.NewClock(), RunOpts{}, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want single-attempt conflict", err)
	}
	if e.calls != 1 {
		t.Fatalf("calls = %d, want 1", e.calls)
	}
}

func TestRunRoutesToReplica(t *testing.T) {
	e := &flakyReader{}
	err := Run(e, sim.NewClock(), RunOpts{Replica: 2}, func(tx Tx) error { return nil })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 0 {
		t.Fatal("replica run must not touch the primary")
	}
	if len(e.replicaCalls) != 1 || e.replicaCalls[0] != 1 {
		t.Fatalf("replica calls = %v, want [1] (Replica is 1-based)", e.replicaCalls)
	}
}

func TestRunReplicaOnNonReader(t *testing.T) {
	e := &flakyEngine{}
	err := Run(e, sim.NewClock(), RunOpts{Replica: 1}, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestRunClosedShimDelegates(t *testing.T) {
	e := &flakyEngine{failures: 2}
	if err := RunClosed(e, sim.NewClock(), 3, func(tx Tx) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 3 {
		t.Fatalf("calls = %d, want 3", e.calls)
	}
}

func TestStatsBytesPerCommit(t *testing.T) {
	var s Stats
	if s.BytesPerCommit() != 0 {
		t.Fatal("empty stats should be zero-safe")
	}
	s.Commits.Add(4)
	s.NetBytes.Add(400)
	if s.BytesPerCommit() != 100 {
		t.Fatalf("bytes/commit = %v", s.BytesPerCommit())
	}
	s.Reset()
	if s.Commits.Load() != 0 || s.NetBytes.Load() != 0 {
		t.Fatal("reset failed")
	}
}

// TestStatsResetZeroesEveryField walks Stats by reflection so a counter
// added without a matching Reset line fails here instead of silently
// leaking values across experiment phases.
func TestStatsResetZeroesEveryField(t *testing.T) {
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		ctr, ok := v.Field(i).Addr().Interface().(*atomic.Int64)
		if !ok {
			t.Fatalf("Stats.%s is %s, not atomic.Int64; extend Reset and this test", f.Name, f.Type)
		}
		ctr.Store(int64(i) + 1)
	}
	s.Reset()
	for i := 0; i < v.NumField(); i++ {
		if got := v.Field(i).Addr().Interface().(*atomic.Int64).Load(); got != 0 {
			t.Errorf("Stats.Reset left %s = %d", v.Type().Field(i).Name, got)
		}
	}
}
