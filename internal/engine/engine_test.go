package engine

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/sim/admission"
)

type flakyEngine struct {
	failures     int // ErrConflict this many times before succeeding
	unavailable  bool
	calls        int
	replicaCalls []int
	stats        Stats
}

func (f *flakyEngine) Name() string  { return "flaky" }
func (f *flakyEngine) Stats() *Stats { return &f.stats }

type nopTx struct{}

func (nopTx) Read(uint64) ([]byte, error) { return nil, nil }
func (nopTx) Write(uint64, []byte) error  { return nil }

// Execute models a conflict-prone engine, charging no virtual time of its
// own — which is exactly what exposes a zero-delay retry loop. It keeps
// the full attempts accounting a real engine must.
func (f *flakyEngine) Execute(c *sim.Clock, fn func(tx Tx) error) error {
	f.calls++
	f.stats.Attempts.Add(1)
	if f.unavailable {
		f.stats.Shed.Add(1)
		return ErrUnavailable
	}
	if f.failures > 0 {
		f.failures--
		f.stats.Aborts.Add(1)
		return ErrConflict
	}
	if err := fn(nopTx{}); err != nil {
		f.stats.Aborts.Add(1)
		return err
	}
	f.stats.Commits.Add(1)
	return nil
}

// flakyReader adds read replicas to flakyEngine.
type flakyReader struct {
	flakyEngine
	replicaFailures int
}

func (f *flakyReader) ReadReplica(c *sim.Clock, idx int, fn func(tx Tx) error) error {
	f.replicaCalls = append(f.replicaCalls, idx)
	f.stats.Attempts.Add(1)
	if f.replicaFailures > 0 {
		f.replicaFailures--
		f.stats.Aborts.Add(1)
		return ErrConflict
	}
	if err := fn(nopTx{}); err != nil {
		f.stats.Aborts.Add(1)
		return err
	}
	f.stats.Commits.Add(1)
	return nil
}

func TestRunRetriesConflicts(t *testing.T) {
	e := &flakyEngine{failures: 2}
	err := Run(e, sim.NewClock(), RunOpts{Retries: 3}, func(tx Tx) error { return nil })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 3 {
		t.Fatalf("calls = %d, want 3", e.calls)
	}
}

func TestRunGivesUp(t *testing.T) {
	e := &flakyEngine{failures: 100}
	err := Run(e, sim.NewClock(), RunOpts{Retries: 2}, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunPassesThroughOtherErrors(t *testing.T) {
	e := &flakyEngine{}
	boom := errors.New("boom")
	err := Run(e, sim.NewClock(), RunOpts{Retries: 5}, func(tx Tx) error { return boom })
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on app error)", e.calls)
	}
}

func TestRunZeroOptsIsExecute(t *testing.T) {
	e := &flakyEngine{failures: 1}
	err := Run(e, sim.NewClock(), RunOpts{}, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want single-attempt conflict", err)
	}
	if e.calls != 1 {
		t.Fatalf("calls = %d, want 1", e.calls)
	}
}

func TestRunRoutesToReplica(t *testing.T) {
	e := &flakyReader{}
	err := Run(e, sim.NewClock(), RunOpts{Replica: 2}, func(tx Tx) error { return nil })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 0 {
		t.Fatal("replica run must not touch the primary")
	}
	if len(e.replicaCalls) != 1 || e.replicaCalls[0] != 1 {
		t.Fatalf("replica calls = %v, want [1] (Replica is 1-based)", e.replicaCalls)
	}
}

func TestRunReplicaOnNonReader(t *testing.T) {
	e := &flakyEngine{}
	err := Run(e, sim.NewClock(), RunOpts{Replica: 1}, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

// TestRunConflictRetryChargesClock is the zero-delay-livelock regression
// test: before the fix, Run's retry loop re-executed conflicted
// transactions without advancing virtual time at all, so a conflict-prone
// engine that charges no time of its own left the clock at zero — the
// retry storm was free, inflating throughput and starving every
// window-based policy (group commit, meters) of elapsed time. With
// default-on backoff, each retry must charge a jittered delay.
func TestRunConflictRetryChargesClock(t *testing.T) {
	e := &flakyEngine{failures: 3}
	c := sim.NewClock()
	if err := Run(e, c, RunOpts{Retries: 5}, func(tx Tx) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if c.Now() == 0 {
		t.Fatal("3 conflict retries advanced the clock by zero: the retry loop is free again")
	}
	st := e.Stats()
	if st.Retries.Load() != 3 || st.Backoffs.Load() != 3 || st.BackoffWait.Load() != int64(c.Now()) {
		t.Fatalf("retry telemetry = retries %d backoffs %d wait %d (clock %v)",
			st.Retries.Load(), st.Backoffs.Load(), st.BackoffWait.Load(), c.Now())
	}
}

// TestRunNoBackoffOptOut pins the explicit escape hatch: admission.NoBackoff
// restores the pre-fix zero-delay behavior (experiments use it to exhibit
// the retry storm on purpose).
func TestRunNoBackoffOptOut(t *testing.T) {
	e := &flakyEngine{failures: 3}
	c := sim.NewClock()
	if err := Run(e, c, RunOpts{Retries: 5, Backoff: admission.NoBackoff}, func(tx Tx) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if c.Now() != 0 {
		t.Fatalf("NoBackoff charged %v", c.Now())
	}
	if got := e.stats.Backoffs.Load(); got != 0 {
		t.Fatalf("backoffs = %d, want 0", got)
	}
}

// TestRunBudgetSurfacesErrorWhenDry pins the retry-budget semantics: a
// dry budget stops retrying and surfaces the last error, bounding retry
// amplification no matter how large Retries is.
func TestRunBudgetSurfacesErrorWhenDry(t *testing.T) {
	e := &flakyEngine{failures: 100}
	b := admission.NewBudget(0, 2) // 2 burst tokens, earning nothing
	err := Run(e, sim.NewClock(), RunOpts{Retries: 50, Budget: b}, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want surfaced ErrConflict", err)
	}
	if e.calls != 3 {
		t.Fatalf("calls = %d, want 3 (first attempt + 2 budgeted retries)", e.calls)
	}
}

// TestRunBreakerFastFails pins breaker wiring: sustained ErrUnavailable
// trips the breaker, after which Run sheds with ErrShed without touching
// the engine, and the shed lands in exactly one counter.
func TestRunBreakerFastFails(t *testing.T) {
	e := &flakyEngine{unavailable: true}
	br := admission.NewBreaker(2, time.Millisecond)
	c := sim.NewClock()
	for i := 0; i < 2; i++ {
		if err := Run(e, c, RunOpts{Breaker: br}, func(tx Tx) error { return nil }); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("run %d err = %v, want ErrUnavailable", i, err)
		}
	}
	err := Run(e, c, RunOpts{Breaker: br}, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed from the open breaker", err)
	}
	if e.calls != 2 {
		t.Fatalf("calls = %d, want 2 (fast-fail must not reach the engine)", e.calls)
	}
	st := e.Stats()
	if a, cm, ab, sh := st.Attempts.Load(), st.Commits.Load(), st.Aborts.Load(), st.Shed.Load(); a != cm+ab+sh || sh != 3 {
		t.Fatalf("accounting attempts %d = commits %d + aborts %d + shed %d violated (want shed 3)", a, cm, ab, sh)
	}
	// After the virtual cooldown the half-open probe reaches the engine.
	e.unavailable = false
	c.Advance(time.Millisecond)
	if err := Run(e, c, RunOpts{Breaker: br}, func(tx Tx) error { return nil }); err != nil {
		t.Fatalf("post-cooldown err = %v", err)
	}
	if e.calls != 3 {
		t.Fatalf("calls = %d, want 3 (probe reaches the engine)", e.calls)
	}
}

// TestRunShedderRejectsAtWatermark pins the load-shedding path: with the
// in-flight watermark full, Run fails fast with ErrShed and counts it.
func TestRunShedderRejectsAtWatermark(t *testing.T) {
	e := &flakyEngine{}
	sh := admission.NewShedder(1)
	if !sh.TryEnter() {
		t.Fatal("setup: could not occupy the only slot")
	}
	err := Run(e, sim.NewClock(), RunOpts{Shed: sh}, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if e.calls != 0 {
		t.Fatal("shed run must not reach the engine")
	}
	if e.stats.Shed.Load() != 1 || e.stats.Attempts.Load() != 1 {
		t.Fatalf("shed accounting = attempts %d shed %d", e.stats.Attempts.Load(), e.stats.Shed.Load())
	}
	sh.Exit()
	if err := Run(e, sim.NewClock(), RunOpts{Shed: sh}, func(tx Tx) error { return nil }); err != nil {
		t.Fatalf("post-exit err = %v", err)
	}
}

// TestRunReplicaConflictRetriesSameReplicaWithBackoff pins the intended
// Replica+Retries semantics: conflicts retry the same replica (its state
// converges with time, which the backoff buys), the clock advances, and
// budget exhaustion surfaces the error for the caller to re-route.
func TestRunReplicaConflictRetriesSameReplicaWithBackoff(t *testing.T) {
	e := &flakyReader{replicaFailures: 2}
	c := sim.NewClock()
	if err := Run(e, c, RunOpts{Replica: 2, Retries: 4}, func(tx Tx) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if len(e.replicaCalls) != 3 {
		t.Fatalf("replica calls = %v, want 3 attempts", e.replicaCalls)
	}
	for _, idx := range e.replicaCalls {
		if idx != 1 {
			t.Fatalf("retry switched replicas: calls = %v", e.replicaCalls)
		}
	}
	if e.calls != 0 {
		t.Fatal("replica retries must not fall back to the primary")
	}
	if c.Now() == 0 {
		t.Fatal("replica conflict retries charged no virtual time")
	}

	// Budget exhaustion surfaces the conflict instead of retrying forever.
	e2 := &flakyReader{replicaFailures: 100}
	err := Run(e2, sim.NewClock(), RunOpts{Replica: 1, Retries: 50, Budget: admission.NewBudget(0, 1)},
		func(tx Tx) error { return nil })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want surfaced ErrConflict after budget", err)
	}
	if len(e2.replicaCalls) != 2 {
		t.Fatalf("replica calls = %d, want 2 (first + 1 budgeted retry)", len(e2.replicaCalls))
	}
}

// TestRunReplicaOnNonReaderCountsShed extends the routing test: the
// refusal must land in the accounting (attempts == shed == 1).
func TestRunReplicaOnNonReaderCountsShed(t *testing.T) {
	e := &flakyEngine{}
	if err := Run(e, sim.NewClock(), RunOpts{Replica: 1}, func(tx Tx) error { return nil }); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if e.stats.Attempts.Load() != 1 || e.stats.Shed.Load() != 1 {
		t.Fatalf("accounting = attempts %d shed %d, want 1/1", e.stats.Attempts.Load(), e.stats.Shed.Load())
	}
}

// TestRunRetriesThroughConflicts pins the behavior the retired
// closed-loop shim delegated to: Retries re-executions absorb transient
// conflicts.
func TestRunRetriesThroughConflicts(t *testing.T) {
	e := &flakyEngine{failures: 2}
	if err := Run(e, sim.NewClock(), RunOpts{Retries: 3}, func(tx Tx) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 3 {
		t.Fatalf("calls = %d, want 3", e.calls)
	}
}

// TestCapsDiscovery checks the consolidated capability probe against a
// plain engine and one with replicas.
func TestCapsDiscovery(t *testing.T) {
	plain := Caps(&flakyEngine{})
	if plain.Recoverer != nil || plain.Reader != nil || plain.GroupCommitter != nil {
		t.Fatalf("flakyEngine caps = %+v, want none", plain)
	}
	reader := Caps(&flakyReader{})
	if reader.Reader == nil {
		t.Fatal("flakyReader must expose the Reader capability")
	}
}

func TestStatsBytesPerCommit(t *testing.T) {
	var s Stats
	if s.BytesPerCommit() != 0 {
		t.Fatal("empty stats should be zero-safe")
	}
	s.Commits.Add(4)
	s.NetBytes.Add(400)
	if s.BytesPerCommit() != 100 {
		t.Fatalf("bytes/commit = %v", s.BytesPerCommit())
	}
	s.Reset()
	if s.Commits.Load() != 0 || s.NetBytes.Load() != 0 {
		t.Fatal("reset failed")
	}
}

// TestStatsResetZeroesEveryField walks Stats by reflection so a counter
// added without a matching Reset line fails here instead of silently
// leaking values across experiment phases.
func TestStatsResetZeroesEveryField(t *testing.T) {
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		ctr, ok := v.Field(i).Addr().Interface().(*atomic.Int64)
		if !ok {
			t.Fatalf("Stats.%s is %s, not atomic.Int64; extend Reset and this test", f.Name, f.Type)
		}
		ctr.Store(int64(i) + 1)
	}
	s.Reset()
	for i := 0; i < v.NumField(); i++ {
		if got := v.Field(i).Addr().Interface().(*atomic.Int64).Load(); got != 0 {
			t.Errorf("Stats.Reset left %s = %d", v.Type().Field(i).Name, got)
		}
	}
}
