package engine

import (
	"errors"
	"testing"

	"github.com/disagglab/disagg/internal/sim"
)

type flakyEngine struct {
	failures int
	calls    int
	stats    Stats
}

func (f *flakyEngine) Name() string  { return "flaky" }
func (f *flakyEngine) Stats() *Stats { return &f.stats }

type nopTx struct{}

func (nopTx) Read(uint64) ([]byte, error) { return nil, nil }
func (nopTx) Write(uint64, []byte) error  { return nil }

func (f *flakyEngine) Execute(c *sim.Clock, fn func(tx Tx) error) error {
	f.calls++
	if f.failures > 0 {
		f.failures--
		return ErrConflict
	}
	if err := fn(nopTx{}); err != nil {
		return err
	}
	f.stats.Commits.Add(1)
	return nil
}

func TestRunClosedRetriesConflicts(t *testing.T) {
	e := &flakyEngine{failures: 2}
	err := RunClosed(e, sim.NewClock(), 3, func(tx Tx) error { return nil })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 3 {
		t.Fatalf("calls = %d, want 3", e.calls)
	}
}

func TestRunClosedGivesUp(t *testing.T) {
	e := &flakyEngine{failures: 100}
	err := RunClosed(e, sim.NewClock(), 2, func(tx Tx) error { return nil })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunClosedPassesThroughOtherErrors(t *testing.T) {
	e := &flakyEngine{}
	boom := errors.New("boom")
	err := RunClosed(e, sim.NewClock(), 5, func(tx Tx) error { return boom })
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if e.calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on app error)", e.calls)
	}
}

func TestStatsBytesPerCommit(t *testing.T) {
	var s Stats
	if s.BytesPerCommit() != 0 {
		t.Fatal("empty stats should be zero-safe")
	}
	s.Commits.Add(4)
	s.NetBytes.Add(400)
	if s.BytesPerCommit() != 100 {
		t.Fatalf("bytes/commit = %v", s.BytesPerCommit())
	}
	s.Reset()
	if s.Commits.Load() != 0 || s.NetBytes.Load() != 0 {
		t.Fatal("reset failed")
	}
}
