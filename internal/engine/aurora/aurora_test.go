package aurora

import (
	"encoding/binary"
	"testing"

	"github.com/disagglab/disagg/internal/cluster"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/sim"
)

func TestConformance(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return New(cfg, enginetest.Layout(t), 64, 1)
	})
}

func TestElastic(t *testing.T) {
	enginetest.RunElastic(t, func(t *testing.T, cfg *sim.Config) cluster.Spec {
		layout := enginetest.Layout(t)
		var root *Engine
		return cluster.Spec{
			Name: "aurora",
			New: func(id int) engine.Engine {
				if id == 0 {
					root = New(cfg, layout, 64, 1)
					return root
				}
				return Peer(root, id, 64)
			},
		}
	})
}

func TestOnlyLogsShipped(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, 0)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 50; i++ {
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) }); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.PageBytes.Load() != 0 {
		t.Fatalf("aurora shipped %d page bytes; log-as-the-database means zero", st.PageBytes.Load())
	}
	// Bytes per commit should be on the order of the log records, far
	// below a page.
	if bpc := st.BytesPerCommit(); bpc > float64(layout.PageSize)/2 {
		t.Fatalf("bytes/commit = %.0f, suspiciously page-like", bpc)
	}
}

func TestReaderReplicaSeesCommittedData(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, 2)
	c := sim.NewClock()
	want := make([]byte, layout.ValSize)
	binary.LittleEndian.PutUint64(want, 4242)
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(7, want) }); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 2; idx++ {
		err := e.ReadReplica(c, idx, func(tx engine.Tx) error {
			v, err := tx.Read(7)
			if err != nil {
				return err
			}
			if binary.LittleEndian.Uint64(v) != 4242 {
				t.Errorf("replica %d read %d", idx, binary.LittleEndian.Uint64(v))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Writes on a replica are rejected.
	err := e.ReadReplica(c, 0, func(tx engine.Tx) error { return tx.Write(1, want) })
	if err != engine.ErrReadOnly {
		t.Fatalf("replica write: %v", err)
	}
}

// Regression: reader-replica caches were populated on first access and
// never invalidated, so a replica that had served a page once kept serving
// that version forever — not replica lag but a permanently stale read,
// surfaced by the history checker as a session-order cycle (write on the
// primary, then read the old value on the replica). The writer now fans
// cache-invalidation notices to every reader at commit.
func TestReplicaCacheInvalidatedOnCommit(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, 1)
	c := sim.NewClock()
	put := func(n uint64) {
		val := make([]byte, layout.ValSize)
		binary.LittleEndian.PutUint64(val, n)
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(3, val) }); err != nil {
			t.Fatal(err)
		}
	}
	replicaRead := func() (got uint64) {
		if err := e.ReadReplica(c, 0, func(tx engine.Tx) error {
			v, err := tx.Read(3)
			if err != nil {
				return err
			}
			got = binary.LittleEndian.Uint64(v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	put(1)
	if got := replicaRead(); got != 1 { // warms the replica cache
		t.Fatalf("replica read %d before second commit", got)
	}
	put(2)
	if got := replicaRead(); got != 2 {
		t.Fatalf("replica served stale cached value %d after commit of 2", got)
	}
}

func TestSurvivesAZFailure(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, 0)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(1, val) })
	e.Volume.FailAZ(0)
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(2, val) }); err != nil {
		t.Fatalf("write quorum should survive AZ loss: %v", err)
	}
	// One more node: writes must stop, reads continue.
	e.Volume.Replicas[2].Fail()
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(3, val) }); err != engine.ErrUnavailable {
		t.Fatalf("write with 3/6 alive: %v", err)
	}
	e.Pool().InvalidateAll() // force a storage read
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
		_, err := tx.Read(1)
		return err
	}); err != nil {
		t.Fatalf("read quorum should survive AZ+1: %v", err)
	}
}

func TestRecoveryIsNearInstant(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64, 0)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 200; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	e.Crash()
	rc := sim.NewClock()
	d, err := e.Recover(rc)
	if err != nil {
		t.Fatal(err)
	}
	// Recovery is one quorum poll: well under a millisecond, and
	// independent of history length.
	if d > 1_000_000 { // 1ms
		t.Fatalf("aurora recovery took %v", d)
	}
	if e.DurableLSN() == 0 {
		t.Fatal("durable LSN not restored")
	}
}

func TestChaosCrashRecovery(t *testing.T) {
	enginetest.RunChaos(t, func(t *testing.T) engine.Engine {
		return New(sim.DefaultConfig(), enginetest.Layout(t), 64, 1)
	})
}
