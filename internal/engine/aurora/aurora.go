// Package aurora implements the Aurora architecture of §2.1: software-level
// disaggregation with "the log is the database". The single writer node
// ships only redo log records — never pages — to a 6-replica / 3-AZ
// storage volume with a 4/6 write quorum; storage nodes materialize pages
// from the log asynchronously. Reader replicas share the same volume and
// serve reads at their replica LSN. Crash recovery is nearly instant: a
// new writer only needs the durable volume LSN (no redo replay on the
// compute node).
package aurora

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/buffer"
	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/storagenode"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// Engine is the Aurora-style engine: one writer, optional readers, shared
// quorum volume.
type Engine struct {
	cfg    *sim.Config
	layout heap.Layout
	Volume *storagenode.Volume
	log    *wal.Log
	locks  *txn.LockTable
	stats  engine.Stats

	pool    *buffer.Pool // writer-node cache
	readers []*buffer.Pool

	// dir is the engine's page-coherence directory: commit publishes fan
	// invalidation notices to the reader caches (riding the log stream)
	// and version-stamp every cached frame. poolH is the writer pool's
	// subscription (excluded from its own publishes — the writer applies
	// in place).
	dir   *coherence.Directory
	poolH *coherence.Handle

	// gc, when non-nil, combines concurrent commit appends into shared
	// quorum flushes (engine.GroupCommitter).
	gc *sim.Batcher[[]wal.Record, wal.LSN]

	// ckpt runs the log-lifecycle rounds: materialize the durable prefix
	// on the storage replicas, publish the horizon, truncate the writer's
	// log below it.
	ckpt *checkpoint.Coordinator

	mu         sync.Mutex
	durableLSN wal.LSN
	nextTx     atomic.Uint64
	crashed    atomic.Bool
}

// New creates the engine with the canonical volume, a writer cache of
// poolPages frames, and `readers` reader replicas with caches of the same
// size.
func New(cfg *sim.Config, layout heap.Layout, poolPages, readers int) *Engine {
	e := &Engine{
		cfg:    cfg,
		layout: layout,
		Volume: storagenode.NewAuroraVolume(cfg, layout),
		log:    wal.NewLog(),
		locks:  txn.NewLockTable(),
	}
	e.pool = buffer.NewPool(cfg, poolPages, e.fetcherAt(func() wal.LSN { return e.DurableLSN() }), nil)
	for i := 0; i < readers; i++ {
		e.readers = append(e.readers, buffer.NewPool(cfg, poolPages, e.fetcherAt(e.DurableLSN), nil))
	}
	e.dir = coherence.NewDirectory(cfg, "aurora.coherence", coherence.ModeInvalidate)
	e.dir.OnInvalidate = func(n int) { e.stats.Invalidations.Add(int64(n)) }
	e.dir.OnStale = func() { e.stats.StaleHits.Add(1) }
	stampOf := func(d []byte) uint64 { return page.Wrap(d).LSN() }
	e.poolH = e.dir.Register("writer", e.pool)
	e.pool.SetCoherence(e.poolH, stampOf)
	for i, rp := range e.readers {
		rp.SetCoherence(e.dir.Register(fmt.Sprintf("reader%d", i), rp), stampOf)
	}
	e.ckpt = checkpoint.New(cfg, "ckpt.aurora")
	return e
}

// Peer creates an additional compute node attached to root's shared
// substrate: it shares the quorum volume, the authoritative log (one LSN
// space), and the page-coherence directory, but owns a fresh cache, lock
// table, and stats — the disaggregation elasticity story, where a
// scaled-out node is stateless and attaches in seconds. The peer's pool
// registers as a coherence tier with the ROOT's directory, so commits on
// any member invalidate every member's cached copies. Correctness
// contract: peers have independent lock tables, so a router must keep
// concurrent writers to the same key on one member (the cluster shard map
// does). peerID stripes transaction IDs so members never collide in the
// shared log.
func Peer(root *Engine, peerID, poolPages int) *Engine {
	e := &Engine{
		cfg:    root.cfg,
		layout: root.layout,
		Volume: root.Volume,
		log:    root.log,
		locks:  txn.NewLockTable(),
		dir:    root.dir,
		ckpt:   root.ckpt, // one horizon per shared log
	}
	e.pool = buffer.NewPool(e.cfg, poolPages, e.fetcherAt(func() wal.LSN { return e.DurableLSN() }), nil)
	e.poolH = e.dir.Register(fmt.Sprintf("peer%d", peerID), e.pool)
	e.pool.SetCoherence(e.poolH, func(d []byte) uint64 { return page.Wrap(d).LSN() })
	e.nextTx.Store(uint64(peerID) << 40)
	// A fresh node knows nothing durable yet; Recover (the fleet's warm-up
	// step) learns the volume's high LSN. Until then reads float at LSN 0,
	// which is safe (floors only rise) but cold.
	return e
}

// Detach unregisters the peer's cache tier from the shared coherence
// directory so retired members stop absorbing invalidation fan-out.
func (e *Engine) Detach() { e.dir.Deregister(e.poolH) }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "aurora" }

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return &e.stats }

// EnableGroupCommit implements engine.GroupCommitter: commit-path volume
// appends ride a shared flush of up to maxItems transactions or the
// virtual window, whichever triggers first.
func (e *Engine) EnableGroupCommit(maxItems int, window time.Duration) {
	// Coherence publications piggyback on the same cadence: one durable
	// group flush = one invalidation round for the whole group.
	e.dir.EnableBatching(maxItems, window)
	if maxItems <= 1 {
		e.gc = nil
		return
	}
	e.gc = sim.NewBatcher(e.cfg, "aurora.groupcommit",
		sim.BatchPolicy{MaxItems: maxItems, Window: window, OnFlush: e.noteFlush},
		e.flushGroup)
}

// Coherence exposes the engine's page-coherence directory (experiments
// ablate its mode and read its counters).
func (e *Engine) Coherence() *coherence.Directory { return e.dir }

// SetCoherenceMode switches invalidation fan-out vs lazy version bumps.
func (e *Engine) SetCoherenceMode(m coherence.Mode) { e.dir.SetMode(m) }

func (e *Engine) noteFlush(n int, reason sim.FlushReason) {
	e.stats.GroupFlushes.Add(1)
	if reason == sim.FlushSize {
		e.stats.FlushOnSize.Add(1)
	} else {
		e.stats.FlushOnTimeout.Add(1)
	}
}

// flushGroup ships every rider's records as one quorum append in LSN
// order; all riders observe the same durable LSN (the group's high-water
// mark) or the same error.
func (e *Engine) flushGroup(c *sim.Clock, groups [][]wal.Record, out []wal.LSN) error {
	var recs []wal.Record
	for _, g := range groups {
		recs = append(recs, g...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	if err := e.Volume.AppendLog(c, recs); err != nil {
		return err
	}
	e.stats.NetMsgs.Add(int64(e.Volume.Alive()))
	high := recs[len(recs)-1].LSN
	e.mu.Lock()
	if high > e.durableLSN {
		e.durableLSN = high
	}
	e.mu.Unlock()
	for i := range out {
		out[i] = high
	}
	return nil
}

// DurableLSN reports the write-quorum-durable LSN.
func (e *Engine) DurableLSN() wal.LSN {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.durableLSN
}

// fetcherAt builds a buffer-pool fetcher that reads pages from the volume
// at the given LSN floor.
func (e *Engine) fetcherAt(minLSN func() wal.LSN) buffer.Fetcher {
	return func(c *sim.Clock, id page.ID) ([]byte, error) {
		data, err := e.Volume.ReadPage(c, id, minLSN())
		if err != nil {
			// Injected drops can leave the same log hole on every
			// replica (no peer can fill it); heal from the writer's
			// authoritative log and retry once.
			e.Volume.Heal(sim.NewClock(), e.log)
			data, err = e.Volume.ReadPage(c, id, minLSN())
		}
		if err != nil {
			return nil, err
		}
		e.stats.StorageOps.Add(1)
		e.stats.NetMsgs.Add(1)
		e.stats.NetBytes.Add(int64(len(data)))
		return data, nil
	}
}

func (e *Engine) readKey(c *sim.Clock, pool *buffer.Pool) func(key uint64) ([]byte, error) {
	return func(key uint64) ([]byte, error) {
		id := e.layout.PageOf(key)
		// Peek serves a validated hit atomically (the old Contains+Get
		// pair raced invalidations between the two lock acquisitions, and
		// miscounted a stale frame as a hit).
		if data, ok := pool.Peek(c, id); ok {
			e.stats.CacheHits.Add(1)
			return e.layout.ReadValue(data, key)
		}
		e.stats.CacheMisses.Add(1)
		data, err := pool.Get(c, id)
		if err != nil {
			return nil, err
		}
		return e.layout.ReadValue(data, key)
	}
}

// Execute implements engine.Engine (runs on the writer node).
func (e *Engine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if e.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKey(c, e.pool))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	// Read-only work proceeded on the read quorum; committing writes
	// requires the write quorum.
	if !e.Volume.WriteAvailable() {
		e.stats.Aborts.Add(1)
		return engine.ErrUnavailable
	}
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()
	// Build and ship ONLY log records (log-as-the-database). The written
	// pages' new coherence stamps are the per-page max update-record LSN:
	// that is the page LSN a storage-side materialization carries, so a
	// refetched page always validates.
	var recs []wal.Record
	logBytes := 0
	var lastLSN wal.LSN
	pageStamp := make(map[page.ID]uint64)
	for _, k := range keys {
		id := e.layout.PageOf(k)
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, PageID: uint64(id), Key: k, After: writes[k]}
		rec.LSN = e.log.Append(rec)
		lastLSN = rec.LSN
		logBytes += rec.EncodedSize()
		recs = append(recs, rec)
		if uint64(rec.LSN) > pageStamp[id] {
			pageStamp[id] = uint64(rec.LSN)
		}
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	commit.LSN = e.log.Append(commit)
	lastLSN = commit.LSN
	logBytes += commit.EncodedSize()
	recs = append(recs, commit)

	if e.gc != nil {
		// Ride a shared group flush; the flush updates durableLSN to the
		// group's high LSN and charges one fan-out message burst for the
		// whole batch. Per-transaction bytes still cross the fabric.
		if _, err := e.gc.Submit(c, recs); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
		e.stats.GroupCommits.Add(1)
	} else {
		if err := e.Volume.AppendLog(c, recs); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
		e.stats.NetMsgs.Add(int64(e.Volume.Alive()))
	}
	st.StampCommit(uint64(commit.LSN))
	// The writer fans the records out to every alive replica (6-way
	// under full health); all copies cross the network.
	fanout := int64(e.Volume.Alive())
	e.stats.LogBytes.Add(int64(logBytes))
	e.stats.NetBytes.Add(int64(logBytes) * fanout)

	e.mu.Lock()
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	e.mu.Unlock()
	// Apply to the writer's cache first (pages materialize lazily in
	// storage): Mutate re-stamps the frame from the mutated bytes, so the
	// writer's own copy stays fresh across the publish below. A failed
	// apply leaves the old stamp in place and the publish automatically
	// makes the frame stale — replacing the old explicit
	// Invalidate-on-error call.
	for _, k := range keys {
		key := k
		if e.pool.Contains(e.layout.PageOf(k)) {
			_ = e.pool.Mutate(c, e.layout.PageOf(k), func(data []byte) error {
				return e.layout.WriteValue(data, key, writes[key], uint64(lastLSN))
			})
		}
	}
	// Publish the commit at its durability point: the directory bumps the
	// written pages' versions and fans invalidation notices (riding the
	// log stream) to every reader cache holding them. Without this, a
	// reader frame cached before the commit serves the old version
	// forever — not replica lag but a permanently stale read, which the
	// history checker flags as a session-order cycle.
	stamps := make([]coherence.PageStamp, 0, len(pageStamp))
	for id, s := range pageStamp {
		stamps = append(stamps, coherence.PageStamp{ID: id, Stamp: s})
	}
	e.dir.Publish(c, stamps, e.poolH)
	e.stats.Commits.Add(1)
	return nil
}

// ReadReplica implements engine.Reader: a read-only transaction on reader
// replica idx, served from its cache backed by the shared volume. Replica
// reads follow the same accounting invariant as Execute: every attempt
// lands in exactly one of Commits/Aborts.
func (e *Engine) ReadReplica(c *sim.Clock, idx int, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	pool := e.readers[idx]
	st := engine.NewStagedTx(e.readKey(c, pool))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	if !st.Empty() {
		e.stats.Aborts.Add(1)
		return engine.ErrReadOnly
	}
	e.stats.Commits.Add(1)
	return nil
}

// InvalidateReader drops a page from a reader cache (the writer sends
// cache-invalidation notices alongside the log stream).
func (e *Engine) InvalidateReader(idx int, id page.ID) { e.readers[idx].Invalidate(id) }

// Crash implements engine.Recoverer: the writer node dies; the volume and
// its materialized pages survive.
func (e *Engine) Crash() {
	e.crashed.Store(true)
	e.pool.InvalidateAll()
}

// Recover implements engine.Recoverer: Aurora recovery — poll a read
// quorum for the durable volume LSN; no compute-side redo (storage nodes
// materialize on demand).
func (e *Engine) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	lsn, err := e.Volume.FindHighLSN(c)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	e.durableLSN = lsn
	e.mu.Unlock()
	e.crashed.Store(false)
	return c.Now() - start, nil
}

// Checkpoint implements engine.Checkpointer. Aurora's checkpoint is a
// storage-side operation: the writer nudges every alive replica to
// materialize the log prefix at or below the durable LSN into pages
// (Heal), publishes the horizon to the volume, and only then drops its
// own retained log tail below the horizon. Replicas that are down during
// the round adopt the horizon later via RepairReplica's checkpoint-image
// copy, so truncation never strands them.
func (e *Engine) Checkpoint(c *sim.Clock) error {
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: e.DurableLSN,
		Flush: func(c *sim.Clock, h wal.LSN) error {
			shipped := e.Volume.Heal(c, e.log)
			e.stats.NetMsgs.Add(int64(shipped))
			advanced := e.Volume.AdvanceHorizon(c, h)
			if advanced < e.Volume.WriteQ {
				// Fewer than a write quorum hold the checkpoint; keep the
				// full tail so repair can still replay from the log.
				return storagenode.ErrNoQuorum
			}
			e.stats.NetMsgs.Add(int64(advanced))
			return nil
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			e.log.TruncateBefore(h + 1)
			return nil
		},
	})
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *Engine) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// Pool exposes the writer cache.
func (e *Engine) Pool() *buffer.Pool { return e.pool }

// Log exposes the authoritative log (replica repair, tests).
func (e *Engine) Log() *wal.Log { return e.log }
