package polardb

import (
	"testing"

	"github.com/disagglab/disagg/internal/cluster"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/enginetest"
	"github.com/disagglab/disagg/internal/sim"
)

func TestConformance(t *testing.T) {
	enginetest.RunConformance(t, func(t *testing.T, cfg *sim.Config) engine.Engine {
		return New(cfg, enginetest.Layout(t), 64)
	})
}

func TestElastic(t *testing.T) {
	enginetest.RunElastic(t, func(t *testing.T, cfg *sim.Config) cluster.Spec {
		layout := enginetest.Layout(t)
		var root *Engine
		return cluster.Spec{
			Name: "polardb",
			New: func(id int) engine.Engine {
				if id == 0 {
					root = New(cfg, layout, 64)
					return root
				}
				return Peer(root, id, 64)
			},
		}
	})
}

func TestShipsPagesAndLogs(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64)
	e.CheckpointEvery = 16
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 64; i++ {
		if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) }); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.LogBytes.Load() == 0 {
		t.Fatal("no log shipped")
	}
	if st.PageBytes.Load() == 0 {
		t.Fatal("no pages shipped — PolarDB ships both")
	}
}

func TestPolarFSLeaderFailover(t *testing.T) {
	layout := enginetest.Layout(t)
	e := New(sim.DefaultConfig(), layout, 64)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	for i := uint64(0); i < 10; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i, val) })
	}
	// Kill the PolarFS leader; the engine recovers by electing a new one.
	e.FS.FailPeer(e.FS.Leader())
	e.Crash()
	if _, err := e.Recover(sim.NewClock()); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(99, val) }); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	e.Pool().InvalidateAll()
	if err := engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error {
		v, err := tx.Read(5)
		if err != nil {
			return err
		}
		if len(v) != layout.ValSize {
			t.Error("value lost across failover")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCommitFasterThanTCPBaselineButMoreBytesThanAurora(t *testing.T) {
	// The E1/E3 shape at engine granularity: PolarDB's RDMA commit path
	// is cheap per txn, but page shipping adds bytes.
	layout := enginetest.Layout(t)
	cfg := sim.DefaultConfig()
	e := New(cfg, layout, 256)
	c := sim.NewClock()
	val := make([]byte, layout.ValSize)
	const n = 200
	for i := uint64(0); i < n; i++ {
		engine.Run(e, c, engine.RunOpts{}, func(tx engine.Tx) error { return tx.Write(i%32, val) })
	}
	bpc := e.Stats().BytesPerCommit()
	if bpc < 200 {
		t.Fatalf("bytes/commit = %.0f, too low for a page-shipping engine", bpc)
	}
}

func TestChaosCrashRecovery(t *testing.T) {
	enginetest.RunChaos(t, func(t *testing.T) engine.Engine {
		return New(sim.DefaultConfig(), enginetest.Layout(t), 64)
	})
}
