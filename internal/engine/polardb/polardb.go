// Package polardb implements the PolarDB architecture of §2.1: compute
// separated from a PolarFS-style storage layer — a POSIX-like distributed
// file system with 3-way ParallelRaft replication over RDMA. Unlike
// Aurora, PolarDB ships BOTH redo log records (at commit) and page images
// (checkpoint writes of dirty pages), trading network volume for a storage
// layer that never has to materialize pages from log. Commits ride RDMA
// and NVMe, so commit latency is low; E1 measures the byte cost.
package polardb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disagglab/disagg/internal/buffer"
	"github.com/disagglab/disagg/internal/buffer/coherence"
	"github.com/disagglab/disagg/internal/checkpoint"
	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/page"
	"github.com/disagglab/disagg/internal/raft"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/txn"
	"github.com/disagglab/disagg/internal/wal"
)

// Engine is the PolarDB-style engine.
type Engine struct {
	cfg    *sim.Config
	layout heap.Layout
	// FS is the PolarFS log: raft-replicated records.
	FS    *raft.Group
	log   *wal.Log
	locks *txn.LockTable
	stats engine.Stats
	pool  *buffer.Pool

	// dir version-stamps the pool's frames at commit publishes; with one
	// pool there is no fan-out (the pool is excluded from its own
	// publishes), but a frame whose apply failed goes stale automatically
	// and is refetched with log replay.
	dir   *coherence.Directory
	poolH *coherence.Handle

	// gc, when non-nil, combines concurrent commit-path raft appends into
	// shared group flushes (engine.GroupCommitter): one replication round
	// carries every rider's encoded records.
	gc *sim.Batcher[[]byte, int]

	// CheckpointEvery flushes dirty pages to PolarFS every N commits
	// (page shipping; 0 disables).
	CheckpointEvery int

	// ckpt drives the full log lifecycle (Checkpoint): redo the retained
	// tail into the PolarFS page images, publish the horizon, compact the
	// raft log and truncate the redo log below it.
	ckpt *checkpoint.Coordinator

	mu          sync.Mutex
	pagesFS     map[page.ID][]byte // page images persisted in PolarFS
	durableLSN  wal.LSN
	commitCount int
	fsCompactTo int // raft commit index captured with the horizon
	nextTx      atomic.Uint64
	crashed     atomic.Bool
}

// New creates the engine with a 3-way PolarFS group.
func New(cfg *sim.Config, layout heap.Layout, poolPages int) *Engine {
	e := &Engine{
		cfg:             cfg,
		layout:          layout,
		FS:              raft.NewGroup(cfg, 3),
		log:             wal.NewLog(),
		locks:           txn.NewLockTable(),
		pagesFS:         make(map[page.ID][]byte),
		CheckpointEvery: 64,
	}
	e.pool = buffer.NewPool(cfg, poolPages, e.fetchPage, e.shipPage)
	e.dir = coherence.NewDirectory(cfg, "polardb.coherence", coherence.ModeBump)
	e.dir.OnInvalidate = func(n int) { e.stats.Invalidations.Add(int64(n)) }
	e.dir.OnStale = func() { e.stats.StaleHits.Add(1) }
	e.poolH = e.dir.Register("pool", e.pool)
	e.pool.SetCoherence(e.poolH, func(d []byte) uint64 { return page.Wrap(d).LSN() })
	e.ckpt = checkpoint.New(cfg, "ckpt.polardb")
	return e
}

// Peer creates an additional compute node attached to root's shared
// substrate: the PolarFS raft group, the authoritative log (one LSN
// space), and the page-coherence directory are shared; the cache, lock
// table, page-image map, and stats are the peer's own. A peer that has
// not shipped a page reads it by formatting a fresh image and replaying
// the shared log up to its durable watermark — which is why the fleet
// warms a fresh peer with Recover before routing to it. Peers rely on the
// cluster router keeping concurrent writers to one key on one member
// (independent lock tables); peerID stripes transaction IDs.
func Peer(root *Engine, peerID, poolPages int) *Engine {
	e := &Engine{
		cfg:             root.cfg,
		layout:          root.layout,
		FS:              root.FS,
		log:             root.log,
		locks:           txn.NewLockTable(),
		pagesFS:         make(map[page.ID][]byte),
		dir:             root.dir,
		CheckpointEvery: root.CheckpointEvery,
		ckpt:            root.ckpt, // one horizon per shared log
	}
	e.pool = buffer.NewPool(e.cfg, poolPages, e.fetchPage, e.shipPage)
	e.poolH = e.dir.Register(fmt.Sprintf("peer%d", peerID), e.pool)
	e.pool.SetCoherence(e.poolH, func(d []byte) uint64 { return page.Wrap(d).LSN() })
	e.nextTx.Store(uint64(peerID) << 40)
	return e
}

// Detach unregisters the peer's cache from the shared coherence directory
// (a retired member stops absorbing invalidation fan-out).
func (e *Engine) Detach() { e.dir.Deregister(e.poolH) }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "polardb" }

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return &e.stats }

// EnableGroupCommit implements engine.GroupCommitter: commit-path raft
// appends share one replication round of up to maxItems transactions or
// the virtual window.
func (e *Engine) EnableGroupCommit(maxItems int, window time.Duration) {
	e.dir.EnableBatching(maxItems, window)
	if maxItems <= 1 {
		e.gc = nil
		return
	}
	e.gc = sim.NewBatcher(e.cfg, "polardb.groupcommit",
		sim.BatchPolicy{MaxItems: maxItems, Window: window, OnFlush: e.noteFlush},
		e.flushGroup)
}

func (e *Engine) noteFlush(n int, reason sim.FlushReason) {
	e.stats.GroupFlushes.Add(1)
	if reason == sim.FlushSize {
		e.stats.FlushOnSize.Add(1)
	} else {
		e.stats.FlushOnTimeout.Add(1)
	}
}

// flushGroup raft-appends every rider's encoded records as one
// replication round; rider i learns its log index in out[i].
func (e *Engine) flushGroup(c *sim.Clock, blobs [][]byte, out []int) error {
	first, err := e.FS.AppendBatch(c, blobs)
	if err != nil {
		return err
	}
	for i := range out {
		out[i] = first + i
	}
	e.stats.NetMsgs.Add(3)
	return nil
}

// fetchPage reads a page image from PolarFS (RDMA + NVMe) and replays any
// newer log records onto it.
func (e *Engine) fetchPage(c *sim.Clock, id page.ID) ([]byte, error) {
	e.mu.Lock()
	img, ok := e.pagesFS[id]
	e.mu.Unlock()
	var data []byte
	if ok {
		data = make([]byte, len(img))
		copy(data, img)
	} else {
		data = e.layout.FormatPage(id).Bytes()
	}
	c.Advance(e.cfg.RDMA.Cost(len(data)) + e.cfg.SSDRead.Cost(len(data)))
	e.stats.StorageOps.Add(1)
	e.stats.NetMsgs.Add(1)
	e.stats.NetBytes.Add(int64(len(data)))
	// Replay newer records for this page from the durable log.
	pg := page.Wrap(data)
	recs := e.log.Since(wal.LSN(pg.LSN()))
	for _, r := range recs {
		if r.PageID != uint64(id) || r.Type != wal.TypeUpdate {
			continue
		}
		if r.LSN <= e.durableWatermark() {
			e.layout.WriteValue(data, r.Key, r.After, uint64(r.LSN))
			c.Advance(e.cfg.CPU.Cost(len(r.After)))
		}
	}
	return data, nil
}

func (e *Engine) durableWatermark() wal.LSN {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.durableLSN
}

// shipPage persists a dirty page image into PolarFS (page shipping).
func (e *Engine) shipPage(c *sim.Clock, id page.ID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	e.mu.Lock()
	e.pagesFS[id] = cp
	e.mu.Unlock()
	// 3-way replicated write over RDMA + NVMe.
	if _, err := e.FS.Append(c, cp); err != nil {
		return err
	}
	e.stats.PageBytes.Add(int64(len(data)))
	e.stats.NetBytes.Add(int64(len(data)))
	e.stats.NetMsgs.Add(1)
	e.stats.StorageOps.Add(1)
	return nil
}

func (e *Engine) readKey(c *sim.Clock) func(key uint64) ([]byte, error) {
	return func(key uint64) ([]byte, error) {
		id := e.layout.PageOf(key)
		// Peek serves a validated hit atomically (the old Contains+Get
		// pair miscounted a stale frame as a hit).
		if data, ok := e.pool.Peek(c, id); ok {
			e.stats.CacheHits.Add(1)
			return e.layout.ReadValue(data, key)
		}
		e.stats.CacheMisses.Add(1)
		data, err := e.pool.Get(c, id)
		if err != nil {
			return nil, err
		}
		return e.layout.ReadValue(data, key)
	}
}

// Execute implements engine.Engine.
func (e *Engine) Execute(c *sim.Clock, fn func(tx engine.Tx) error) error {
	e.stats.Attempts.Add(1)
	if e.crashed.Load() {
		e.stats.Shed.Add(1)
		return engine.ErrUnavailable
	}
	txID := e.nextTx.Add(1)
	st := engine.NewStagedTx(e.readKey(c))
	if err := fn(st); err != nil {
		e.stats.Aborts.Add(1)
		return err
	}
	keys, writes := st.WriteSet()
	if len(keys) == 0 {
		e.stats.Commits.Add(1)
		return nil
	}
	held := 0
	for _, k := range keys {
		if err := e.locks.Acquire(c, txID, k, txn.Exclusive, txn.DefaultAcquire); err != nil {
			for _, h := range keys[:held] {
				e.locks.Unlock(txID, h, txn.Exclusive)
			}
			e.stats.Aborts.Add(1)
			return engine.ErrConflict
		}
		held++
	}
	defer func() {
		for _, k := range keys {
			e.locks.Unlock(txID, k, txn.Exclusive)
		}
	}()
	// Log shipping at commit: encode records, raft-append the batch.
	var lastLSN wal.LSN
	payload := 0
	var encoded []byte
	pageStamp := make(map[page.ID]uint64)
	for _, k := range keys {
		id := e.layout.PageOf(k)
		rec := wal.Record{Type: wal.TypeUpdate, TxID: txID, PageID: uint64(id), Key: k, After: writes[k]}
		rec.LSN = e.log.Append(rec)
		lastLSN = rec.LSN
		encoded = rec.Encode(encoded)
		if uint64(rec.LSN) > pageStamp[id] {
			pageStamp[id] = uint64(rec.LSN)
		}
	}
	commit := wal.Record{Type: wal.TypeCommit, TxID: txID}
	commit.LSN = e.log.Append(commit)
	lastLSN = commit.LSN
	encoded = commit.Encode(encoded)
	payload = len(encoded)
	if e.gc != nil {
		if _, err := e.gc.Submit(c, encoded); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
		e.stats.GroupCommits.Add(1)
	} else {
		if _, err := e.FS.Append(c, encoded); err != nil {
			e.stats.Aborts.Add(1)
			return engine.Unavail(err)
		}
		e.stats.NetMsgs.Add(3)
	}
	st.StampCommit(uint64(commit.LSN))
	// PolarFS replicates leader -> 2 followers over the fabric.
	e.stats.LogBytes.Add(int64(payload))
	e.stats.NetBytes.Add(int64(payload) * 3)
	e.mu.Lock()
	if lastLSN > e.durableLSN {
		e.durableLSN = lastLSN
	}
	e.commitCount++
	doCkpt := e.CheckpointEvery > 0 && e.commitCount%e.CheckpointEvery == 0
	e.mu.Unlock()
	// Apply to the cache, then publish the commit stamps. Mutate re-stamps
	// each frame from the mutated bytes, so an applied frame stays fresh
	// across the publish; a failed apply (e.g. an injected fault on the
	// page fetch) leaves the old stamp and the publish makes the frame
	// stale, so the next reader refetches with log replay — replacing the
	// old explicit Invalidate-on-error call.
	for _, k := range keys {
		key := k
		_ = e.pool.Mutate(c, e.layout.PageOf(k), func(data []byte) error {
			return e.layout.WriteValue(data, key, writes[key], uint64(lastLSN))
		})
	}
	stamps := make([]coherence.PageStamp, 0, len(pageStamp))
	for id, st := range pageStamp {
		stamps = append(stamps, coherence.PageStamp{ID: id, Stamp: st})
	}
	e.dir.Publish(c, stamps, e.poolH)
	if doCkpt {
		// Page shipping: flush dirty pages to PolarFS. A failed flush
		// does not fail the (already durable) commit — the pages stay
		// dirty and the next checkpoint retries.
		_ = e.pool.FlushAll(c)
	}
	e.stats.Commits.Add(1)
	return nil
}

// Crash implements engine.Recoverer.
func (e *Engine) Crash() {
	e.crashed.Store(true)
	e.pool.InvalidateAll()
}

// Recover implements engine.Recoverer: elect a PolarFS leader if needed,
// learn the log high-water mark, then resume — pages and log are durable
// in PolarFS, and pages are read on demand with log replay folded into
// fetchPage. Advancing the watermark matters for fleet peers: without it
// a takeover node would replay only its OWN commits onto fetched pages
// and never surface records the crashed member made durable. Records past
// the watermark that were never acknowledged may surface too, which is
// legal — an unacked write may appear after recovery, a lost acked one
// may not.
func (e *Engine) Recover(c *sim.Clock) (time.Duration, error) {
	start := c.Now()
	if _, err := e.FS.Elect(c); err != nil {
		return 0, err
	}
	if head := e.log.Head(); head > 1 {
		e.mu.Lock()
		if head-1 > e.durableLSN {
			e.durableLSN = head - 1
		}
		e.mu.Unlock()
	}
	e.crashed.Store(false)
	return c.Now() - start, nil
}

// Checkpoint implements engine.Checkpointer. PolarDB already ships page
// images, so the flush step redoes the retained log tail (at or below
// the horizon) directly into the PolarFS page images — covering commits
// whose cache applies failed and never got shipped — then runs the usual
// dirty-page flush. Truncation compacts the raft log up to the commit
// index captured with the horizon and drops the redo log below the
// horizon. Entries compacted out of raft are covered by the shipped
// images plus the retained redo tail. The checkpoint must run on the
// node that owns the shipped images; fleet peers share the coordinator
// so they observe one consistent horizon.
func (e *Engine) Checkpoint(c *sim.Clock) error {
	return e.ckpt.Checkpoint(c, checkpoint.Round{
		Durable: func() wal.LSN {
			e.mu.Lock()
			defer e.mu.Unlock()
			e.fsCompactTo = e.FS.CommitIndex()
			return e.durableLSN
		},
		Flush: func(c *sim.Clock, h wal.LSN) error {
			recs, err := e.log.Replay(e.ckpt.Horizon())
			if err != nil {
				return err
			}
			dirty := map[page.ID]int{}
			e.mu.Lock()
			for _, r := range recs {
				if r.LSN > h || r.Type != wal.TypeUpdate {
					continue
				}
				id := page.ID(r.PageID)
				img, ok := e.pagesFS[id]
				if !ok {
					img = e.layout.FormatPage(id).Bytes()
					e.pagesFS[id] = img
				}
				if uint64(r.LSN) <= page.Wrap(img).LSN() {
					continue
				}
				if err := e.layout.WriteValue(img, r.Key, r.After, uint64(r.LSN)); err != nil {
					e.mu.Unlock()
					return err
				}
				dirty[id] = len(img)
			}
			e.mu.Unlock()
			for _, n := range dirty {
				c.Advance(e.cfg.RDMA.Cost(n) + e.cfg.SSDWrite.Cost(n))
				e.stats.PageBytes.Add(int64(n))
				e.stats.NetBytes.Add(int64(n))
				e.stats.NetMsgs.Add(1)
				e.stats.StorageOps.Add(1)
			}
			// Regular page shipping of whatever is dirty in the cache; a
			// fault here is tolerable (the redo above already covered the
			// horizon) but surfaces as a failed round for the caller.
			return e.pool.FlushAll(c)
		},
		Truncate: func(c *sim.Clock, h wal.LSN) error {
			e.mu.Lock()
			idx := e.fsCompactTo
			e.mu.Unlock()
			if err := e.FS.CompactTo(c, idx); err != nil {
				return err
			}
			e.log.TruncateBefore(h + 1)
			return nil
		},
	})
}

// RecoveryHorizon implements engine.Checkpointer.
func (e *Engine) RecoveryHorizon() wal.LSN { return e.ckpt.Horizon() }

// Pool exposes the buffer pool.
func (e *Engine) Pool() *buffer.Pool { return e.pool }
