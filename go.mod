module github.com/disagglab/disagg

go 1.24
