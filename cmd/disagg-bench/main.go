// Command disagg-bench runs the experiment suite: the "comprehensive
// performance evaluation platform for disaggregated databases" that the
// tutorial's Future Directions section calls for. Each experiment
// regenerates one quantitative claim from the paper and self-checks the
// expected result shape.
//
// Usage:
//
//	disagg-bench -list
//	disagg-bench -run all -scale quick
//	disagg-bench -run E1,E6,E18 -scale full
//	disagg-bench -run E-elastic          # elastic fleet vs fixed node (E28)
//	disagg-bench -run E1 -trace          # span tree of one representative op
//	disagg-bench -run E1,E6,E18 -stats   # per-site latency/byte/meter tables
//	disagg-bench -run E1 -profile        # append E30 critical-path attribution
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/disagglab/disagg/internal/harness"
	"github.com/disagglab/disagg/internal/sim"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		run     = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale   = flag.String("scale", "quick", "quick | full")
		rdmaUS  = flag.Float64("rdma-us", 0, "override one-sided RDMA base latency (µs)")
		cxlNS   = flag.Float64("cxl-ns", 0, "override CXL base latency (ns)")
		checkHistory = flag.Bool("check-history", false, "also run the E-isolation history-checking experiment (E26)")
		profile      = flag.Bool("profile", false, "also run the E-profile critical-path attribution experiment (E30)")

		trace   = flag.Bool("trace", false, "print the span tree of one representative op per experiment")
		stats   = flag.Bool("stats", false, "print per-site telemetry tables after each experiment")
		verbose = flag.Bool("v", false, "print claims before each experiment")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	var sc harness.Scale
	switch *scale {
	case "quick":
		sc = harness.Quick
	case "full":
		sc = harness.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig()
	if *rdmaUS > 0 {
		cfg.RDMA.Base = time.Duration(*rdmaUS * float64(time.Microsecond))
	}
	if *cxlNS > 0 {
		cfg.CXL.Base = time.Duration(*cxlNS * float64(time.Nanosecond))
	}

	var selected []harness.Experiment
	if *run == "all" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	appendExperiment := func(id string) {
		for _, e := range selected {
			if e.ID == id {
				return
			}
		}
		e, _ := harness.Lookup(id)
		selected = append(selected, e)
	}
	if *checkHistory {
		appendExperiment("E26")
	}
	if *profile {
		appendExperiment("E30")
	}

	failed := 0
	for _, e := range selected {
		if *verbose {
			fmt.Printf("---- %s claim: %s\n", e.ID, e.Claim)
		}
		start := time.Now()
		ecfg := cfg.Clone()
		ecfg.Trace = *trace
		var reg *sim.Registry
		if *stats {
			reg = sim.NewRegistry()
			ecfg.Stats = reg
		}
		r := e.Run(ecfg, sc)
		harness.Render(os.Stdout, r)
		if reg != nil {
			fmt.Println(reg.Table(e.ID + " per-site telemetry").String())
		}
		if r.Failed() {
			failed++
		}
		if *verbose {
			fmt.Printf("---- %s wall time: %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) had failing checks\n", failed)
		os.Exit(1)
	}
}
