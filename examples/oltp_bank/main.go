// oltp_bank runs the same bank-transfer workload against three
// architectures from the paper — a monolithic server, Aurora-style storage
// disaggregation, and PolarDB-Serverless-style storage+memory
// disaggregation — and prints the cost profile of each.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/engine/monolithic"
	"github.com/disagglab/disagg/internal/engine/serverless"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/sim"
)

const (
	accounts     = 10_000
	transfers    = 2000
	initialCents = 1_000_00
)

func main() {
	cfg := sim.DefaultConfig()
	layout, err := heap.NewLayout(8192, 16)
	if err != nil {
		log.Fatal(err)
	}
	engines := []engine.Engine{
		monolithic.New(cfg, layout, 2048),
		aurora.New(cfg, layout, 2048, 0),
		serverless.New(cfg, layout, 2, 256, 4096),
	}
	table := metrics.NewTable("bank transfers: 4 tellers x 500 transfers",
		"engine", "tput(txn/s)", "p50", "net B/txn", "conserved")
	for _, e := range engines {
		runBank(cfg, layout, e, table)
	}
	fmt.Println(table.String())
}

func runBank(cfg *sim.Config, layout heap.Layout, e engine.Engine, table *metrics.Table) {
	// Seed balances.
	seed := sim.NewClock()
	for a := uint64(0); a < accounts; a++ {
		a := a
		if err := engine.Run(e, seed, engine.RunOpts{}, func(tx engine.Tx) error {
			return tx.Write(a, cents(initialCents))
		}); err != nil {
			log.Fatal(err)
		}
	}
	e.Stats().Reset()

	// Transfer money between random accounts from 4 tellers. Each teller
	// owns a quarter of the account space (the engines use commit-time
	// write locks without read validation, so disjoint read-modify-write
	// ranges keep the workload serializable).
	res := sim.RunGroup(4, func(id int, c *sim.Clock) int {
		r := sim.NewRand(99, id)
		lo := uint64(id) * accounts / 4
		span := int64(accounts / 4)
		done := 0
		for i := 0; i < transfers/4; i++ {
			from := lo + uint64(r.Int63n(span))
			to := lo + uint64(r.Int63n(span))
			if from == to {
				continue
			}
			amount := int64(r.Int63n(50_00))
			err := engine.Run(e, c, engine.RunOpts{Retries: 10}, func(tx engine.Tx) error {
				fb, err := tx.Read(from)
				if err != nil {
					return err
				}
				tb, err := tx.Read(to)
				if err != nil {
					return err
				}
				f, t := int64(binary.LittleEndian.Uint64(fb)), int64(binary.LittleEndian.Uint64(tb))
				if f < amount {
					return nil // insufficient funds: no-op commit
				}
				if err := tx.Write(from, cents(f-amount)); err != nil {
					return err
				}
				return tx.Write(to, cents(t+amount))
			})
			if err == nil {
				done++
			}
		}
		return done
	})

	// Verify conservation of money.
	var total int64
	check := sim.NewClock()
	for a := uint64(0); a < accounts; a++ {
		a := a
		engine.Run(e, check, engine.RunOpts{}, func(tx engine.Tx) error {
			v, err := tx.Read(a)
			if err != nil {
				return err
			}
			total += int64(binary.LittleEndian.Uint64(v))
			return nil
		})
	}
	conserved := "yes"
	if total != accounts*initialCents {
		conserved = fmt.Sprintf("NO (%d)", total)
	}
	table.Row(e.Name(), res.Throughput(), res.MeanLatency(), e.Stats().BytesPerCommit(), conserved)
}

func cents(v int64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}
