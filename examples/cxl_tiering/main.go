// cxl_tiering reproduces the HANA-style CXL memory-expansion study (§3.3)
// as a runnable demo: an in-memory database keeps its hot delta store in
// local DRAM and its large main store on a CXL Type-3 expander, then runs
// an OLTP mix and an analytics mix against both placements.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/disagglab/disagg/internal/cxl"
	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig()
	fmt.Printf("latency hierarchy: DRAM %v | CXL %v | RDMA %v\n\n",
		cfg.DRAM.Base, cfg.CXL.Base, cfg.RDMA.Base)

	table := metrics.NewTable("HANA-style tiering: delta in DRAM, main store on CXL",
		"workload", "all-local", "CXL main store", "drop")

	// ---- OLTP: point accesses ride prefetch + txn logic dominates ----
	const rows, rowSize, txns = 200_000, 256, 5000
	runOLTP := func(tier cxl.Tier) time.Duration {
		space := cxl.NewTieredSpace(cfg, rows*rowSize+1024, rows*rowSize+1024)
		main, ok := space.Alloc(tier, rows*rowSize)
		if !ok {
			log.Fatal("alloc failed")
		}
		c := sim.NewClock()
		r := sim.NewRand(3, 0)
		buf := make([]byte, rowSize)
		for i := 0; i < txns; i++ {
			c.Advance(60 * time.Microsecond) // txn logic
			for j := 0; j < 10; j++ {
				main.Read(c, uint64(r.Intn(rows))*rowSize, buf, true)
			}
		}
		return c.Now()
	}
	oltpLocal := runOLTP(cxl.TierLocal)
	oltpCXL := runOLTP(cxl.TierCXL)
	table.Row("OLTP (TPC-C-shaped)", oltpLocal, oltpCXL,
		fmt.Sprintf("%.1f%%", 100*(float64(oltpCXL)/float64(oltpLocal)-1)))

	// ---- OLAP: scans are bandwidth-bound, so the CXL gap shows ----
	cfgOLAP := cfg.Clone()
	cfgOLAP.CPU.BytesPerSec = 16 * sim.GB // vectorized scan kernels
	d := workload.TPCH{ScaleRows: 300_000, Clustered: true, Seed: 9}.Generate()
	runOLAP := func(onCXL bool) time.Duration {
		var src query.Source
		if onCXL {
			dev := cxl.NewDevice(cfgOLAP, d.Lineitem.NumRows()*8*len(d.Lineitem.Schema.Cols)*2)
			s, err := query.NewCXLSource(cfgOLAP, dev, d.Lineitem)
			if err != nil {
				log.Fatal(err)
			}
			src = s
		} else {
			src = query.NewLocalSource(cfgOLAP, d.Lineitem)
		}
		c := sim.NewClock()
		q1, _ := workload.Q1(cfgOLAP, src, 2556)
		if _, err := query.Collect(c, q1); err != nil {
			log.Fatal(err)
		}
		q6, _ := workload.Q6(cfgOLAP, src, 0, 2556, 0, 11, false)
		if _, err := query.Collect(c, q6); err != nil {
			log.Fatal(err)
		}
		return c.Now()
	}
	olapLocal := runOLAP(false)
	olapCXL := runOLAP(true)
	table.Row("OLAP (TPC-H Q1+Q6)", olapLocal, olapCXL,
		fmt.Sprintf("%.1f%%", 100*(float64(olapCXL)/float64(olapLocal)-1)))

	fmt.Println(table.String())
	fmt.Println("Ahn et al. (DaMoN'22) report ~0% TPC-C drop and 7-27% TPC-DS drop —")
	fmt.Println("the same shape: OLTP hides CXL latency, scans pay the bandwidth gap.")

	// Bonus: what spilling to CXL buys over NOT having the expander.
	demand := 3 * rows * rowSize / 2
	space := cxl.NewTieredSpace(cfg, rows*rowSize, rows*rowSize)
	if _, ok := space.Alloc(cxl.TierLocal, demand); ok {
		log.Fatal("unexpected: demand fit in local DRAM")
	}
	fmt.Printf("\nworking set of %s exceeds local DRAM (%s): without CXL this workload\n",
		metrics.FormatBytes(int64(demand)), metrics.FormatBytes(int64(rows*rowSize)))
	fmt.Println("spills to SSD; with the expander it stays in (slower) memory.")
}
