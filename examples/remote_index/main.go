// remote_index demonstrates the three disaggregated-memory indexes of the
// paper's §3.1 side by side: RACE extendible hashing (lock-free, one-sided
// CAS), a Sherman-style B+tree (optimistic reads + cheap locks + doorbell
// batching), and a dLSM tree (sharded memtables, remote compaction) — all
// hosted in one memory pool and driven by eight concurrent clients.
package main

import (
	"fmt"
	"log"

	"github.com/disagglab/disagg/internal/index/bptree"
	"github.com/disagglab/disagg/internal/index/lsm"
	"github.com/disagglab/disagg/internal/index/race"
	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/sim"
)

const (
	clients   = 8
	opsPerCli = 3000
	keyspace  = 50_000
)

func main() {
	cfg := sim.DefaultConfig()
	table := metrics.NewTable(
		fmt.Sprintf("%d clients x %d ops (95%% reads, zipf) on one memory pool", clients, opsPerCli),
		"index", "ops/s", "mean latency")

	// RACE hash.
	{
		pool := memnode.New(cfg, "pool-hash", 1<<30)
		h, err := race.New(cfg, pool, 4, 512)
		if err != nil {
			log.Fatal(err)
		}
		seed := h.Attach(1000, nil)
		sc := sim.NewClock()
		for i := uint64(0); i < keyspace; i++ {
			seed.Put(sc, i, []byte("initial-value-01"))
		}
		res := sim.RunGroup(clients, func(id int, c *sim.Clock) int {
			cl := h.Attach(uint64(id+1), nil)
			kc := sim.NewKeyChooser(sim.NewRand(1, id), 1.1, keyspace)
			r := sim.NewRand(2, id)
			for i := 0; i < opsPerCli; i++ {
				k := kc.Next()
				if r.Float64() < 0.95 {
					cl.Get(c, k)
				} else {
					cl.Put(c, k, []byte("updated-value-02"))
				}
			}
			return opsPerCli
		})
		table.Row("RACE extendible hash", res.Throughput(), res.MeanLatency())
	}

	// Sherman B+tree.
	{
		pool := memnode.New(cfg, "pool-btree", 1<<30)
		tr, err := bptree.New(cfg, pool, bptree.Sherman())
		if err != nil {
			log.Fatal(err)
		}
		seed := tr.Attach(1000, nil)
		sc := sim.NewClock()
		for i := uint64(1); i <= keyspace; i++ {
			seed.Put(sc, i, i)
		}
		res := sim.RunGroup(clients, func(id int, c *sim.Clock) int {
			cl := tr.Attach(uint64(id+1), nil)
			kc := sim.NewKeyChooser(sim.NewRand(1, id), 1.1, keyspace)
			r := sim.NewRand(2, id)
			for i := 0; i < opsPerCli; i++ {
				k := kc.Next() + 1
				if r.Float64() < 0.95 {
					cl.Get(c, k)
				} else {
					cl.Put(c, k, k)
				}
			}
			return opsPerCli
		})
		table.Row("Sherman B+tree", res.Throughput(), res.MeanLatency())
	}

	// dLSM.
	{
		pool := memnode.New(cfg, "pool-lsm", 1<<30)
		tr := lsm.New(cfg, pool, lsm.DefaultOptions())
		seedCl := tr.Attach(nil)
		sc := sim.NewClock()
		for i := uint64(0); i < keyspace; i++ {
			seedCl.Put(sc, i, i)
		}
		res := sim.RunGroup(clients, func(id int, c *sim.Clock) int {
			cl := tr.Attach(nil)
			kc := sim.NewKeyChooser(sim.NewRand(1, id), 1.1, keyspace)
			r := sim.NewRand(2, id)
			for i := 0; i < opsPerCli; i++ {
				k := kc.Next()
				if r.Float64() < 0.95 {
					cl.Get(c, k)
				} else {
					cl.Put(c, k, k)
				}
			}
			return opsPerCli
		})
		table.Row(fmt.Sprintf("dLSM (%d shards, remote compaction)", lsm.DefaultOptions().Shards),
			res.Throughput(), res.MeanLatency())
	}

	fmt.Println(table.String())
	fmt.Println("All three indexes live entirely in disaggregated memory; the memory")
	fmt.Println("node's CPU is touched only by dLSM's offloaded compactions.")
}
