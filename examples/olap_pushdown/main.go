// olap_pushdown runs a TPC-H Q6-shaped analytical query against data
// resident in a disaggregated memory pool, three ways: paging the columns
// to the compute node (the disaggregated-OS baseline), TELEPORT-style
// function pushdown, and a Farview-style pipelined operator stack.
package main

import (
	"fmt"
	"log"

	"github.com/disagglab/disagg/internal/memnode"
	"github.com/disagglab/disagg/internal/metrics"
	"github.com/disagglab/disagg/internal/offload"
	"github.com/disagglab/disagg/internal/query"
	"github.com/disagglab/disagg/internal/sim"
	"github.com/disagglab/disagg/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig()
	const rows = 500_000

	// Generate a lineitem-shaped table and move it into the memory pool.
	data := workload.TPCH{ScaleRows: rows, Seed: 42}.Generate()
	li := data.Lineitem
	// offload works on named int64 columns; reuse the generated ones.
	tbl := query.NewTable(workload.LShipDate, workload.LDiscount, workload.LPrice)
	di, _ := li.Schema.ColIndex(workload.LShipDate)
	ci, _ := li.Schema.ColIndex(workload.LDiscount)
	pi, _ := li.Schema.ColIndex(workload.LPrice)
	for r := 0; r < li.NumRows(); r++ {
		tbl.AppendRow(li.Cols[di][r], li.Cols[ci][r], li.Cols[pi][r])
	}
	pool := memnode.New(cfg, "mem-pool", 1<<30)
	rc, err := offload.Upload(cfg, pool, tbl)
	if err != nil {
		log.Fatal(err)
	}
	qp := pool.Connect(nil)

	table := metrics.NewTable(fmt.Sprintf("Q6-shaped query over %d rows in disaggregated memory", rows),
		"execution strategy", "time", "result (sum of price)")

	// 1. Pull: page everything to the compute node.
	pull := sim.NewClock()
	sum, n, err := rc.PullFilterSum(pull, qp, workload.LShipDate, 100, 465, workload.LPrice)
	if err != nil {
		log.Fatal(err)
	}
	table.Row("pull columns (4KB remote paging)", pull.Now(), sum)

	// 2. TELEPORT pushdown: ship the function, not the data.
	push := sim.NewClock()
	sum2, n2, err := rc.PushFilterSum(push, qp, workload.LShipDate, 100, 465, workload.LPrice)
	if err != nil {
		log.Fatal(err)
	}
	table.Row("TELEPORT pushdown (one RPC)", push.Now(), sum2)

	// 3. Farview operator stack with pipelining.
	fv := sim.NewClock()
	groups, err := rc.RunStack(fv, qp, []offload.Stage{
		{Kind: offload.StageSelect, Col: workload.LShipDate, Lo: 100, Hi: 465},
		{Kind: offload.StageGroupBy, Col: workload.LDiscount},
		{Kind: offload.StageAgg, Col: workload.LPrice},
	}, true)
	if err != nil {
		log.Fatal(err)
	}
	var fvSum int64
	for _, v := range groups {
		fvSum += v
	}
	table.Row("Farview pipelined stack (grouped)", fv.Now(), fvSum)

	fmt.Println(table.String())
	if sum != sum2 || sum != fvSum || n != n2 {
		log.Fatalf("results diverge: %d/%d/%d", sum, sum2, fvSum)
	}
	fmt.Printf("pushdown speedup: %.1fx  (matched %d rows; result crosses the wire, not the data)\n",
		float64(pull.Now())/float64(push.Now()), n)
}
