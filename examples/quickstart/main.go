// Quickstart: build an Aurora-style storage-disaggregated database, run
// transactions against it, read from a replica, then crash the compute
// node and watch it recover near-instantly — the log is the database.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/disagglab/disagg/internal/engine"
	"github.com/disagglab/disagg/internal/engine/aurora"
	"github.com/disagglab/disagg/internal/heap"
	"github.com/disagglab/disagg/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	layout, err := heap.NewLayout(8192, 64) // 8KB pages, 64B values
	if err != nil {
		log.Fatal(err)
	}
	// One writer, one read replica, a 6-replica/3-AZ storage volume.
	db := aurora.New(cfg, layout, 1024, 1)
	clock := sim.NewClock()

	// 1. Commit a few transactions.
	for i := uint64(1); i <= 100; i++ {
		i := i
		err := engine.Run(db, clock, engine.RunOpts{}, func(tx engine.Tx) error {
			val := make([]byte, layout.ValSize)
			binary.LittleEndian.PutUint64(val, i*i)
			return tx.Write(i, val)
		})
		if err != nil {
			log.Fatalf("txn %d: %v", i, err)
		}
	}
	fmt.Printf("committed 100 txns in %v simulated time (%.0f txn/s)\n",
		clock.Now(), 100/clock.Now().Seconds())
	fmt.Printf("network bytes per commit: %.0f (only log records cross the wire)\n",
		db.Stats().BytesPerCommit())

	// 2. Read from the replica.
	err = db.ReadReplica(clock, 0, func(tx engine.Tx) error {
		v, err := tx.Read(7)
		if err != nil {
			return err
		}
		fmt.Printf("replica read key 7 -> %d\n", binary.LittleEndian.Uint64(v))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Kill an entire availability zone: writes keep flowing (4/6
	// write quorum).
	db.Volume.FailAZ(2)
	err = engine.Run(db, clock, engine.RunOpts{}, func(tx engine.Tx) error {
		return tx.Write(101, make([]byte, layout.ValSize))
	})
	fmt.Printf("write with one AZ down: %v\n", errString(err))

	// 4. Crash the writer and recover: no redo replay on the compute
	// node — storage nodes already materialize pages from the log.
	db.Crash()
	rc := sim.NewClock()
	d, err := db.Recover(rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compute-node recovery took %v (a quorum LSN poll, not a log replay)\n", d)

	// 5. Everything is still there.
	err = engine.Run(db, clock, engine.RunOpts{}, func(tx engine.Tx) error {
		v, err := tx.Read(100)
		if err != nil {
			return err
		}
		fmt.Printf("after recovery, key 100 -> %d\n", binary.LittleEndian.Uint64(v))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
